"""Tests for repro.consensus.pow."""

import math
import random
import statistics

import pytest

from repro.consensus.pow import (
    MiningCalendar,
    MiningProcess,
    PoWParameters,
    REFERENCE_HASHRATE,
)
from repro.net.events import Scheduler


class TestPoWParameters:
    def test_anchor_calibration(self):
        """Difficulty 0x40000 = one block per minute (the paper's anchor)."""
        params = PoWParameters.one_block_per_minute()
        assert params.expected_interval() == pytest.approx(60.0)

    def test_fast_confirmation_calibration(self):
        """Sec. VI-B2: 76 tx/s with 10-tx blocks."""
        params = PoWParameters.fast_confirmation(tx_per_second=76.0)
        interval = params.expected_interval()
        assert interval * 76.0 == pytest.approx(10.0, rel=0.02)

    def test_more_hashpower_faster_blocks(self):
        params = PoWParameters.one_block_per_minute()
        assert params.expected_interval(2.0) == pytest.approx(30.0)

    def test_invalid_difficulty(self):
        with pytest.raises(ValueError):
            PoWParameters(difficulty=0)

    def test_invalid_hashrate_fraction(self):
        with pytest.raises(ValueError):
            PoWParameters().expected_interval(0.0)

    def test_invalid_tx_rate(self):
        with pytest.raises(ValueError):
            PoWParameters.fast_confirmation(tx_per_second=0)


class TestMiningProcess:
    def test_samples_positive(self):
        process = MiningProcess(PoWParameters.one_block_per_minute(), seed=1)
        assert all(process.next_block_time() > 0 for __ in range(100))

    def test_mean_matches_expectation(self):
        process = MiningProcess(PoWParameters.one_block_per_minute(), seed=2)
        samples = [process.next_block_time() for __ in range(5_000)]
        assert statistics.mean(samples) == pytest.approx(60.0, rel=0.1)

    def test_seed_reproducibility(self):
        a = MiningProcess(PoWParameters(), seed=7)
        b = MiningProcess(PoWParameters(), seed=7)
        assert [a.next_block_time() for __ in range(5)] == [
            b.next_block_time() for __ in range(5)
        ]

    def test_retarget(self):
        process = MiningProcess(PoWParameters.one_block_per_minute(), seed=3)
        process.retarget(2.0)
        assert process.expected_interval == pytest.approx(30.0)

    def test_retarget_rejects_zero(self):
        process = MiningProcess(PoWParameters(), seed=4)
        with pytest.raises(ValueError):
            process.retarget(0.0)

    def test_reference_hashrate_consistency(self):
        assert REFERENCE_HASHRATE * 60.0 == pytest.approx(0x40000)

    def test_prefetch_bit_equal_under_mid_buffer_retargets(self):
        """10^4 draws with retargets landing mid-prefetch-buffer must be
        bit-identical to sequential expovariate arithmetic.

        The buffer stores raw uniforms and applies ``-log(1-u)/lambd``
        lazily, so a retarget must affect the very next draw even when
        the buffer already holds prefetched uniforms.
        """
        params = PoWParameters.one_block_per_minute()
        process = MiningProcess(params, seed=99)
        reference = random.Random(99)
        # Retarget points chosen mid-buffer (PREFETCH=64): none is a
        # multiple of 64, so stale prefetched uniforms are live at every
        # switch.
        retargets = {100: 2.0, 3_001: 0.5, 7_777: 3.0}
        fraction = 1.0
        for i in range(10_000):
            if i in retargets:
                fraction = retargets[i]
                process.retarget(fraction)
            expected = -math.log(1.0 - reference.random()) / (
                1.0 / params.expected_interval(fraction)
            )
            assert process.next_block_time() == expected


def _run_per_miner_oracle(n_miners, script, until):
    """Reference scheme: one standing scheduler event per miner."""
    scheduler = Scheduler()
    params = PoWParameters.one_block_per_minute()
    processes = {
        f"m{i}": MiningProcess(params, seed=1000 + i) for i in range(n_miners)
    }
    events = {}
    fired = []

    def mine(miner_id):
        fired.append((scheduler.now, miner_id))
        events[miner_id] = scheduler.schedule_in(
            processes[miner_id].next_block_time(), mine, miner_id
        )

    for miner_id, process in processes.items():
        events[miner_id] = scheduler.schedule_in(
            process.next_block_time(), mine, miner_id
        )

    def control(action, miner_id, arg):
        if action == "retarget":
            # Cancel-and-redraw: the old pending time was drawn under
            # the old share, replace it.
            processes[miner_id].retarget(arg)
            events[miner_id].cancel()
            events[miner_id] = scheduler.schedule_in(
                processes[miner_id].next_block_time(), mine, miner_id
            )
        elif action == "crash":
            events[miner_id].cancel()
        else:  # pragma: no cover - script typo guard
            raise AssertionError(action)

    for time, action, miner_id, arg in script:
        scheduler.schedule_at(time, control, action, miner_id, arg)
    scheduler.run(until=until)
    return fired


def _run_calendar(n_miners, script, until):
    """Same workload through a MiningCalendar (one heap entry)."""
    scheduler = Scheduler()
    params = PoWParameters.one_block_per_minute()
    processes = {
        f"m{i}": MiningProcess(params, seed=1000 + i) for i in range(n_miners)
    }
    fired = []

    def mine(miner_id):
        fired.append((scheduler.now, miner_id))
        calendar.set_next(
            miner_id, scheduler.now + processes[miner_id].next_block_time()
        )

    calendar = MiningCalendar(scheduler, mine)
    for miner_id, process in processes.items():
        calendar.add(miner_id)
        calendar.set_next(miner_id, scheduler.now + process.next_block_time())
    calendar.rearm()

    def control(action, miner_id, arg):
        if action == "retarget":
            processes[miner_id].retarget(arg)
            calendar.set_next(
                miner_id, scheduler.now + processes[miner_id].next_block_time()
            )
        elif action == "crash":
            calendar.set_next(miner_id, math.inf)
        else:  # pragma: no cover - script typo guard
            raise AssertionError(action)
        calendar.rearm()

    for time, action, miner_id, arg in script:
        scheduler.schedule_at(time, control, action, miner_id, arg)
    scheduler.run(until=until)
    return fired


class TestMiningCalendar:
    # 5 miners exercises the pure-python argmin, 40 the numpy mirror
    # (when numpy is present; without it both take the python path).
    @pytest.mark.parametrize("n_miners", [5, 40])
    def test_differential_vs_per_miner_events(self, n_miners):
        """Forge/retarget/crash workload: the calendar must fire the
        exact same (time, miner) sequence as one-event-per-miner."""
        script = [
            (200.0, "retarget", "m2", 2.0),
            (350.0, "crash", "m1", None),
            (500.0, "retarget", "m0", 0.25),
            (650.0, "crash", "m2", None),
            (700.0, "retarget", "m3", 4.0),
        ]
        oracle = _run_per_miner_oracle(n_miners, script, until=2_000.0)
        calendar = _run_calendar(n_miners, script, until=2_000.0)
        assert calendar == oracle
        assert len(oracle) > 20  # the workload actually forged blocks
        assert all(miner != "m1" for time, miner in oracle if time > 350.0)

    def test_single_heap_entry(self):
        scheduler = Scheduler()
        calendar = MiningCalendar(scheduler, lambda miner_id: None)
        for i in range(50):
            calendar.add(f"m{i}")
            calendar.set_next(f"m{i}", float(i + 1))
        calendar.rearm()
        assert scheduler.pending == 1
        assert scheduler.peak_pending == 1

    def test_duplicate_miner_rejected(self):
        calendar = MiningCalendar(Scheduler(), lambda miner_id: None)
        calendar.add("m0")
        with pytest.raises(ValueError):
            calendar.add("m0")

    def test_all_crashed_disarms(self):
        scheduler = Scheduler()
        calendar = MiningCalendar(scheduler, lambda miner_id: None)
        calendar.add("m0")
        calendar.set_next("m0", 5.0)
        calendar.rearm()
        assert scheduler.pending == 1
        calendar.set_next("m0", math.inf)
        calendar.rearm()
        assert scheduler.pending == 0
        assert calendar.next_time("m0") == math.inf
