"""Tests for repro.consensus.pow."""

import statistics

import pytest

from repro.consensus.pow import MiningProcess, PoWParameters, REFERENCE_HASHRATE


class TestPoWParameters:
    def test_anchor_calibration(self):
        """Difficulty 0x40000 = one block per minute (the paper's anchor)."""
        params = PoWParameters.one_block_per_minute()
        assert params.expected_interval() == pytest.approx(60.0)

    def test_fast_confirmation_calibration(self):
        """Sec. VI-B2: 76 tx/s with 10-tx blocks."""
        params = PoWParameters.fast_confirmation(tx_per_second=76.0)
        interval = params.expected_interval()
        assert interval * 76.0 == pytest.approx(10.0, rel=0.02)

    def test_more_hashpower_faster_blocks(self):
        params = PoWParameters.one_block_per_minute()
        assert params.expected_interval(2.0) == pytest.approx(30.0)

    def test_invalid_difficulty(self):
        with pytest.raises(ValueError):
            PoWParameters(difficulty=0)

    def test_invalid_hashrate_fraction(self):
        with pytest.raises(ValueError):
            PoWParameters().expected_interval(0.0)

    def test_invalid_tx_rate(self):
        with pytest.raises(ValueError):
            PoWParameters.fast_confirmation(tx_per_second=0)


class TestMiningProcess:
    def test_samples_positive(self):
        process = MiningProcess(PoWParameters.one_block_per_minute(), seed=1)
        assert all(process.next_block_time() > 0 for __ in range(100))

    def test_mean_matches_expectation(self):
        process = MiningProcess(PoWParameters.one_block_per_minute(), seed=2)
        samples = [process.next_block_time() for __ in range(5_000)]
        assert statistics.mean(samples) == pytest.approx(60.0, rel=0.1)

    def test_seed_reproducibility(self):
        a = MiningProcess(PoWParameters(), seed=7)
        b = MiningProcess(PoWParameters(), seed=7)
        assert [a.next_block_time() for __ in range(5)] == [
            b.next_block_time() for __ in range(5)
        ]

    def test_retarget(self):
        process = MiningProcess(PoWParameters.one_block_per_minute(), seed=3)
        process.retarget(2.0)
        assert process.expected_interval == pytest.approx(30.0)

    def test_retarget_rejects_zero(self):
        process = MiningProcess(PoWParameters(), seed=4)
        with pytest.raises(ValueError):
            process.retarget(0.0)

    def test_reference_hashrate_consistency(self):
        assert REFERENCE_HASHRATE * 60.0 == pytest.approx(0x40000)
