"""Tests for repro.consensus.difficulty — the retarget controller."""

import pytest

from repro.consensus.difficulty import (
    RetargetRule,
    RetargetSimulation,
)
from repro.errors import ConfigError


class TestRetargetRule:
    def test_fast_block_raises_difficulty(self):
        rule = RetargetRule()
        next_d = rule.next_difficulty(parent_difficulty=2_048_000, block_time=3.0)
        assert next_d > 2_048_000

    def test_slow_block_lowers_difficulty(self):
        rule = RetargetRule()
        next_d = rule.next_difficulty(parent_difficulty=2_048_000, block_time=45.0)
        assert next_d < 2_048_000

    def test_downward_adjustment_capped(self):
        rule = RetargetRule(minimum_difficulty=1)
        d = 2_048_000
        capped = rule.next_difficulty(d, block_time=1e6)
        step = d // rule.adjustment_quotient
        assert capped == d - 99 * step

    def test_minimum_difficulty_floor(self):
        rule = RetargetRule(minimum_difficulty=100_000)
        assert rule.next_difficulty(100_500, block_time=1e6) == 100_000

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetargetRule(adjustment_quotient=0)
        with pytest.raises(ConfigError):
            RetargetRule().next_difficulty(0, 1.0)
        with pytest.raises(ConfigError):
            RetargetRule().next_difficulty(1, -1.0)


class TestRetargetSimulation:
    def make(self, miners, seed=1):
        return RetargetSimulation(
            rule=RetargetRule(minimum_difficulty=1_000),
            hashrate_per_miner=10_000.0,
            miners=miners,
            initial_difficulty=1_000_000,
            seed=seed,
        )

    def test_interval_converges_near_bucket(self):
        """The controller settles with expected intervals around the
        10-second duration bucket."""
        steady = self.make(miners=4).steady_state_interval()
        assert 5.0 < steady < 25.0

    def test_interval_independent_of_miner_count(self):
        """The Table I justification: steady-state intervals for 2 and 16
        miners agree, because difficulty absorbs the hash power."""
        two = self.make(miners=2, seed=2).steady_state_interval()
        sixteen = self.make(miners=16, seed=3).steady_state_interval()
        assert sixteen == pytest.approx(two, rel=0.25)

    def test_more_hashpower_means_higher_difficulty_not_faster_blocks(self):
        sim = self.make(miners=16, seed=4)
        intervals = sim.run(3_000)
        early = sum(intervals[:100]) / 100  # pre-adjustment: fast blocks
        late = sum(intervals[-1_000:]) / 1_000
        assert late > early  # difficulty caught up

    def test_deterministic_under_seed(self):
        assert self.make(4, seed=9).run(50) == self.make(4, seed=9).run(50)

    def test_warmup_fraction_zero_is_whole_run_mean(self):
        """0.0 is a valid boundary: no samples are discarded."""
        sim = self.make(miners=4, seed=6)
        whole = sim.steady_state_interval(blocks=200, warmup_fraction=0.0)
        intervals = self.make(miners=4, seed=6).run(200)
        assert whole == pytest.approx(sum(intervals) / len(intervals))

    def test_warmup_fraction_one_rejected(self):
        """1.0 used to divide by zero (every sample discarded); it must
        be rejected up front as a configuration error."""
        with pytest.raises(ConfigError, match=r"warmup_fraction"):
            self.make(miners=4).steady_state_interval(warmup_fraction=1.0)

    def test_warmup_fraction_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            self.make(miners=4).steady_state_interval(warmup_fraction=1.5)
        with pytest.raises(ConfigError):
            self.make(miners=4).steady_state_interval(warmup_fraction=-0.1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetargetSimulation(RetargetRule(), 0.0, 1, 100)
        with pytest.raises(ConfigError):
            self.make(1).run(0)
