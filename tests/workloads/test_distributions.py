"""Tests for repro.workloads.distributions."""

import statistics

import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import (
    binomial_fees,
    exponential_fees,
    random_small_shard_sizes,
    uniform_fees,
)


class TestUniformFees:
    def test_in_range(self):
        fees = uniform_fees(200, low=5, high=15, seed=1)
        assert all(5 <= f <= 15 for f in fees)

    def test_deterministic(self):
        assert uniform_fees(10, seed=2) == uniform_fees(10, seed=2)

    def test_count(self):
        assert len(uniform_fees(7, seed=3)) == 7
        assert uniform_fees(0, seed=3) == []

    def test_validation(self):
        with pytest.raises(WorkloadError):
            uniform_fees(-1)
        with pytest.raises(WorkloadError):
            uniform_fees(1, low=10, high=5)


class TestBinomialFees:
    def test_mean_near_half_total(self):
        fees = binomial_fees(500, total_fees=200, seed=4)
        assert statistics.mean(fees) == pytest.approx(100, rel=0.05)

    def test_bounded(self):
        fees = binomial_fees(100, total_fees=20, seed=5)
        assert all(0 <= f <= 20 for f in fees)

    def test_never_emits_zero_fee(self):
        """Property: every fee is >= 1, matching the uniform and
        exponential generators. A zero fee makes its transaction's
        selection share f_j/(n_j+1) identically zero regardless of
        congestion, silently distorting the game."""
        for seed in range(50):
            fees = binomial_fees(200, total_fees=2, seed=seed)
            assert min(fees) >= 1

    def test_zero_draws_clamp_to_one(self):
        # total_fees=1 over 2 Bernoulli trials hits raw draw 0 often;
        # the clamp must lift those to 1, never drop below.
        fees = binomial_fees(500, total_fees=1, seed=11)
        assert set(fees) <= {1}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            binomial_fees(-1)
        with pytest.raises(WorkloadError):
            binomial_fees(1, total_fees=0)


class TestExponentialFees:
    def test_positive_integers(self):
        fees = exponential_fees(200, mean=20.0, seed=6)
        assert all(isinstance(f, int) and f >= 1 for f in fees)

    def test_heavy_tail(self):
        fees = exponential_fees(2_000, mean=20.0, seed=7)
        assert max(fees) > 3 * statistics.mean(fees)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            exponential_fees(-1)
        with pytest.raises(WorkloadError):
            exponential_fees(1, mean=0.0)


class TestShardSizes:
    def test_paper_range(self):
        sizes = random_small_shard_sizes(100, seed=8)
        assert all(1 <= s <= 9 for s in sizes)

    def test_deterministic(self):
        assert random_small_shard_sizes(5, seed=9) == random_small_shard_sizes(
            5, seed=9
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            random_small_shard_sizes(-1)
        with pytest.raises(WorkloadError):
            random_small_shard_sizes(1, low=0)
        with pytest.raises(WorkloadError):
            random_small_shard_sizes(1, low=5, high=4)
