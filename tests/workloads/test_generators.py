"""Tests for repro.workloads.generators."""

import pytest

from repro.chain.state import WorldState
from repro.chain.contract import SmartContract
from repro.core.shard_formation import MAXSHARD_ID, partition_transactions
from repro.errors import WorkloadError
from repro.workloads.generators import (
    WorkloadBuilder,
    single_shard_workload,
    small_shard_workload,
    three_input_workload,
    uniform_contract_workload,
)


def assert_workload_validates(txs):
    """Every generated workload must apply cleanly to a fresh state."""
    state = WorldState()
    contracts = {tx.contract for tx in txs if tx.contract}
    for contract in contracts:
        state.deploy_contract(SmartContract.unconditional(contract, "0xsink"))
    for tx in txs:
        state.create_account(tx.sender)
        state.account(tx.sender).balance = max(
            state.account(tx.sender).balance, 1_000_000
        )
    by_sender: dict[str, list] = {}
    for tx in txs:
        by_sender.setdefault(tx.sender, []).append(tx)
    for sender_txs in by_sender.values():
        for tx in sorted(sender_txs, key=lambda t: t.nonce):
            state.apply_transaction(tx)


class TestWorkloadBuilder:
    def test_nonces_increment_per_sender(self):
        builder = WorkloadBuilder(seed=1)
        a1 = builder.direct_transfer("0xua", "0xub", fee=1)
        a2 = builder.direct_transfer("0xua", "0xub", fee=1)
        b1 = builder.direct_transfer("0xub", "0xua", fee=1)
        assert (a1.nonce, a2.nonce, b1.nonce) == (0, 1, 0)

    def test_senders_seen(self):
        builder = WorkloadBuilder(seed=2)
        builder.direct_transfer("0xua", "0xub", fee=1)
        assert builder.senders_seen() == ["0xua"]


class TestUniformContractWorkload:
    def test_partition_matches_paper_formula(self):
        """200/(s+1) transactions per shard with s contracts."""
        txs = uniform_contract_workload(200, contract_shards=4, seed=3)
        partition = partition_transactions(txs)
        assert len(partition.by_shard) == 5
        assert all(size == 40 for size in partition.shard_sizes.values())

    def test_zero_contracts_all_maxshard(self):
        txs = uniform_contract_workload(50, contract_shards=0, seed=4)
        partition = partition_transactions(txs)
        assert partition.shard_sizes == {MAXSHARD_ID: 50}

    def test_validates_against_state(self):
        assert_workload_validates(uniform_contract_workload(60, 3, seed=5))

    def test_validation_errors(self):
        with pytest.raises(WorkloadError):
            uniform_contract_workload(-1, 1)
        with pytest.raises(WorkloadError):
            uniform_contract_workload(1, -1)


class TestSmallShardWorkload:
    def test_intended_sizes_realized(self):
        txs, sizes = small_shard_workload(
            200, shard_count=9, small_shard_sizes=[3, 5], seed=6
        )
        partition = partition_transactions(txs)
        for shard_index, size in sizes.items():
            assert partition.shard_sizes[shard_index] == size
        assert sum(sizes.values()) == 200

    def test_small_then_regular_ordering(self):
        __, sizes = small_shard_workload(200, 9, [1, 2, 3], seed=7)
        assert sizes[1] == 1 and sizes[2] == 2 and sizes[3] == 3
        assert all(sizes[i] > 20 for i in range(4, 10))

    def test_too_many_small_shards_rejected(self):
        with pytest.raises(WorkloadError):
            small_shard_workload(200, 2, [1, 2], seed=8)

    def test_oversized_small_shards_rejected(self):
        with pytest.raises(WorkloadError):
            small_shard_workload(10, 9, [9, 9], seed=9)

    def test_validates_against_state(self):
        txs, __ = small_shard_workload(100, 9, [2, 4], seed=10)
        assert_workload_validates(txs)


class TestThreeInputWorkload:
    def test_input_count(self):
        txs = three_input_workload(20, inputs=3, seed=11)
        assert all(len(tx.input_accounts) == 3 for tx in txs)

    def test_all_maxshard(self):
        txs = three_input_workload(50, seed=12)
        partition = partition_transactions(txs)
        assert partition.shard_sizes == {MAXSHARD_ID: 50}

    def test_configurable_inputs(self):
        txs = three_input_workload(5, inputs=5, seed=13)
        assert all(len(tx.input_accounts) == 5 for tx in txs)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            three_input_workload(1, inputs=0)


class TestSingleShardWorkload:
    def test_single_contract(self):
        txs = single_shard_workload(30, seed=14)
        assert len({tx.contract for tx in txs}) == 1

    def test_explicit_fees(self):
        txs = single_shard_workload(3, fees=[7, 8, 9], seed=15)
        assert [tx.fee for tx in txs] == [7, 8, 9]

    def test_fee_length_checked(self):
        with pytest.raises(WorkloadError):
            single_shard_workload(3, fees=[1], seed=16)

    def test_lands_in_one_shard(self):
        txs = single_shard_workload(30, seed=17)
        partition = partition_transactions(txs)
        non_empty = [s for s, size in partition.shard_sizes.items() if size]
        assert len(non_empty) == 1


class TestStreamingPopulationAndInterleave:
    """Campaign-scale stream knobs: bounded senders + round-robin order."""

    def _stream(self, **kwargs):
        from repro.workloads.generators import (
            streaming_uniform_contract_workload,
        )

        return streaming_uniform_contract_workload(
            total_txs=120, contract_shards=3, seed=9, **kwargs
        )

    def test_population_bounds_sender_set_per_slice(self):
        txs = list(self._stream(senders_per_shard=5))
        by_slice: dict[str | None, set[str]] = {}
        for tx in txs:
            by_slice.setdefault(tx.contract, set()).add(tx.sender)
        assert len(by_slice) == 4  # MaxShard (None) + 3 contracts
        assert all(len(s) == 5 for s in by_slice.values())

    def test_population_fee_ladder_follows_nonce_order(self):
        txs = list(self._stream(senders_per_shard=5))
        by_sender: dict[str, list] = {}
        for tx in txs:
            by_sender.setdefault(tx.sender, []).append(tx)
        for chain in by_sender.values():
            assert [tx.nonce for tx in chain] == list(range(len(chain)))
            fees = [tx.fee for tx in chain]
            assert fees == sorted(fees, reverse=True)

    def test_population_too_small_for_fee_ladder_refused(self):
        from repro.workloads.generators import (
            streaming_uniform_contract_workload,
        )

        with pytest.raises(WorkloadError, match="fee ladder"):
            streaming_uniform_contract_workload(
                total_txs=1000, contract_shards=0, seed=9, senders_per_shard=2
            )

    def test_interleave_rotates_slices_round_robin(self):
        txs = list(self._stream(interleave_shards=True))
        slices = [tx.contract for tx in txs]
        # 4 slices, 120 txs: every window of 4 covers all slices once.
        for start in range(0, 120, 4):
            assert len(set(slices[start:start + 4])) == 4

    def test_interleave_preserves_transaction_multiset(self):
        def key(tx):
            return (tx.sender, tx.nonce, tx.fee, tx.contract, tx.recipient)

        plain = sorted(map(key, self._stream(senders_per_shard=5)))
        rotated = sorted(
            map(key, self._stream(senders_per_shard=5, interleave_shards=True))
        )
        assert plain == rotated

    def test_interleave_keeps_per_sender_nonces_in_yield_order(self):
        seen: dict[str, int] = {}
        for tx in self._stream(senders_per_shard=5, interleave_shards=True):
            assert tx.nonce == seen.get(tx.sender, 0)
            seen[tx.sender] = tx.nonce + 1

    def test_default_order_matches_list_generator(self):
        listed = uniform_contract_workload(120, contract_shards=3, seed=9)
        streamed = list(self._stream())
        assert [
            (t.sender, t.fee, t.nonce, t.contract) for t in listed
        ] == [(t.sender, t.fee, t.nonce, t.contract) for t in streamed]
