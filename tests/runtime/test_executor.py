"""Tests for repro.runtime.executor."""

import os

import pytest

from repro.errors import SimulationError
from repro.runtime import (
    ProcessExecutor,
    SerialExecutor,
    executor_from_env,
    get_default_executor,
    parallel_map,
    set_default_executor,
    use_executor,
)
from repro.runtime.executor import fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process executor needs the fork start method"
)


def _square(x: int) -> int:
    return x * x


def _pid(_: int) -> int:
    return os.getpid()


class TestSerialExecutor:
    def test_map_preserves_order(self):
        assert SerialExecutor().map(_square, range(5)) == [0, 1, 4, 9, 16]

    def test_runs_in_calling_process(self):
        assert SerialExecutor().map(_pid, [0]) == [os.getpid()]


class TestProcessExecutor:
    def test_map_matches_serial(self):
        items = list(range(17))
        assert ProcessExecutor(workers=2).map(_square, items) == [
            _square(i) for i in items
        ]

    def test_runs_in_worker_processes(self):
        pids = ProcessExecutor(workers=2).map(_pid, range(4))
        assert os.getpid() not in pids

    def test_closures_are_supported(self):
        offset = 100
        results = ProcessExecutor(workers=2).map(
            lambda x: x + offset, range(4)
        )
        assert results == [100, 101, 102, 103]

    def test_below_min_items_runs_serial(self):
        executor = ProcessExecutor(workers=2, min_items=5)
        assert executor.map(_pid, range(3)) == [os.getpid()] * 3

    def test_single_worker_runs_serial(self):
        assert ProcessExecutor(workers=1).map(_pid, range(4)) == [
            os.getpid()
        ] * 4

    def test_zero_workers_rejected(self):
        with pytest.raises(SimulationError):
            ProcessExecutor(workers=0)

    def test_nested_map_does_not_multiply_fanout(self):
        outer = ProcessExecutor(workers=2)

        def inner_sum(x: int) -> int:
            # A task that itself fans out: the inner map must degrade to
            # serial inside the worker instead of forking grandchildren.
            return sum(ProcessExecutor(workers=2).map(_square, range(x + 2)))

        assert outer.map(inner_sum, range(4)) == [
            sum(i * i for i in range(x + 2)) for x in range(4)
        ]

    def test_task_exception_propagates(self):
        def boom(x: int) -> int:
            raise ValueError(f"task {x}")

        with pytest.raises(ValueError):
            ProcessExecutor(workers=2).map(boom, range(4))


class TestEnvSelection:
    def test_serial_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        assert isinstance(executor_from_env(), SerialExecutor)

    def test_process_mode_with_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        executor = executor_from_env()
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 3

    def test_auto_mode_single_cpu_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "auto")
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert isinstance(executor_from_env(), SerialExecutor)

    def test_auto_mode_multi_cpu_is_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "auto")
        monkeypatch.setenv("REPRO_WORKERS", "4")
        executor = executor_from_env()
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 4

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threads")
        with pytest.raises(SimulationError):
            executor_from_env()

    def test_non_integer_workers_rejected(self, monkeypatch):
        """REPRO_WORKERS=max used to escape as a raw ValueError from
        int(); it must surface as a SimulationError naming the variable
        and the offending value."""
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "max")
        with pytest.raises(SimulationError, match=r"REPRO_WORKERS='max'"):
            executor_from_env()

    def test_zero_workers_rejected_in_auto_mode(self, monkeypatch):
        """Zero used to slip through auto mode (os.cpu_count() was never
        consulted) and blow up later inside ProcessExecutor."""
        monkeypatch.setenv("REPRO_EXECUTOR", "auto")
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(SimulationError, match=r"REPRO_WORKERS='0'"):
            executor_from_env()

    def test_negative_workers_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(SimulationError, match="must be >= 1"):
            executor_from_env()


class TestDefaultExecutor:
    def test_use_executor_scopes_the_override(self):
        original = get_default_executor()
        replacement = SerialExecutor()
        with use_executor(replacement) as active:
            assert active is replacement
            assert get_default_executor() is replacement
        assert get_default_executor() is original

    def test_set_default_executor_none_rederives(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "serial")
        previous = get_default_executor()
        try:
            set_default_executor(None)
            assert isinstance(get_default_executor(), SerialExecutor)
        finally:
            set_default_executor(previous)

    def test_parallel_map_uses_explicit_executor(self):
        assert parallel_map(_square, range(4), SerialExecutor()) == [0, 1, 4, 9]
