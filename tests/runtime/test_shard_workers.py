"""Unit and property tests for the shard-parallel engine's machinery.

Engine-level parity lives in ``tests/sim/test_shard_parallel.py``; this
module covers the pieces that make it work — total-order trace tags,
the tagged-segment merge, container-aware CPU counting — and the core
determinism property: the order shard windows execute in (the thing
real parallelism randomizes) is unobservable.
"""

import os
import random

import pytest

from repro.consensus.miner import MinerIdentity
from repro.observe import Tracer, merge_tagged_records
from repro.runtime import effective_cpu_count
from repro.runtime.shard_workers import TaggedTracer, run_shard_parallel
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import uniform_contract_workload


class TestTaggedTracer:
    def test_tags_order_within_and_across_contexts(self):
        tracer = TaggedTracer()
        tracer.set_context(1.0, 1, 0, 5)
        tracer.event("a", time=1.0, phase="x")
        tracer.event("b", time=1.0, phase="x")
        tracer.set_context(0.5, 0, 3, 0)
        tracer.event("c", time=0.5, phase="x")
        tags = [tag for tag, __ in tracer.tagged]
        # Within a context the emission index orders records; across
        # contexts the (time, lane, a, b) prefix does.
        assert tags[0] < tags[1]
        assert sorted(tags) == [tags[2], tags[0], tags[1]]

    def test_emission_mark_counts_context_emissions(self):
        tracer = TaggedTracer()
        tracer.set_context(2.0, 1, 1, 0)
        assert tracer.emission_mark == 0
        tracer.event("a", time=2.0, phase="x")
        assert tracer.emission_mark == 1
        tracer.set_context(3.0, 1, 1, 1)
        assert tracer.emission_mark == 0

    def test_fractional_base_slots_between_integer_indexes(self):
        """Intent-replay records tag at ``mark - 0.5`` so they sort
        between a mine event's own record and its post-event records."""
        tracer = TaggedTracer()
        tracer.set_context(1.0, 1, 0, 0)
        tracer.event("block.forged", time=1.0, phase="mine")  # i=0
        tracer.event("tx.confirmed", time=1.0, phase="confirm")  # i=1
        tracer.set_context(1.0, 1, 0, 0, base=0.5, step=1e-9)
        tracer.event("fault.drop", time=1.0, phase="fault")
        ordered = [r.name for __, r in sorted(tracer.tagged, key=lambda p: p[0])]
        assert ordered == ["block.forged", "fault.drop", "tx.confirmed"]

    def test_tags_never_alter_record_content(self):
        plain = Tracer()
        tagged = TaggedTracer()
        for tracer in (plain, tagged):
            tracer.event("e", time=4.2, phase="p", shard=1, actor="m0", k=3)
        # Tagged records live only in the segment buffer (the base
        # buffer/digest is the coordinator's job after the merge).
        assert tagged.records == []
        assert plain.records[0].identity() == tagged.tagged[0][1].identity()


class TestMergeTaggedRecords:
    def test_merges_segments_by_tag_and_renumbers_seq(self):
        a, b = TaggedTracer(), TaggedTracer()
        a.set_context(2.0, 1, 0, 0)
        a.event("late", time=2.0, phase="x")
        b.set_context(1.0, 1, 1, 0)
        b.event("early", time=1.0, phase="x")
        merged = merge_tagged_records([a.tagged, b.tagged], base_seq=10)
        assert [r.name for r in merged] == ["early", "late"]
        assert [r.seq for r in merged] == [10, 11]

    def test_merge_is_stable_for_equal_tags(self):
        a = TaggedTracer()
        a.set_context(1.0, 0, 0, 0, step=0.0)  # identical tags
        a.event("first", time=1.0, phase="x")
        a.event("second", time=1.0, phase="x")
        merged = merge_tagged_records([a.tagged])
        assert [r.name for r in merged] == ["first", "second"]


class TestEffectiveCpuCount:
    def test_positive(self):
        assert effective_cpu_count() >= 1

    def test_matches_affinity_when_available(self):
        if hasattr(os, "sched_getaffinity"):
            assert effective_cpu_count() == len(os.sched_getaffinity(0))


def _build_sim(engine="shard_parallel", **overrides):
    identities = [MinerIdentity.create(f"m{i}") for i in range(6)]
    workload = uniform_contract_workload(total_txs=40, contract_shards=3, seed=7)
    config = ProtocolConfig(
        seed=7, engine=engine, trace=True, max_duration=5000.0, **overrides
    )
    return ProtocolSimulation(identities, workload, config=config)


class TestWindowOrderInvariance:
    """The determinism property: which shard runs its window first is an
    artifact of scheduling (process speed, OS jitter), so the engine's
    output must be invariant under *any* permutation of it."""

    def test_permuted_window_orders_produce_identical_digests(self):
        reference = _build_sim().run().trace.digest()
        sim = _build_sim()
        shard_ids = sorted({node.shard_id for node in sim._nodes.values()})
        rng = random.Random(0xC0FFEE)
        for __ in range(3):
            order = list(shard_ids)
            rng.shuffle(order)
            sim = _build_sim()
            result = run_shard_parallel(sim, window_order=order)
            assert result.trace.digest() == reference, order

    def test_reversed_window_order_matches_fast_engine(self):
        fast = _build_sim(engine="fast").run().trace.digest()
        sim = _build_sim()
        shard_ids = sorted({node.shard_id for node in sim._nodes.values()})
        result = run_shard_parallel(sim, window_order=list(reversed(shard_ids)))
        assert result.trace.digest() == fast
