"""Differential tests: optimized kernels vs. their kept references."""

import random

import numpy as np
import pytest

from repro.chain.callgraph import CallGraph
from repro.core.merging.equilibrium import (
    best_pure_deviation,
    best_pure_deviation_reference,
)
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.core.selection.best_reply import BestReplyDynamics
from repro.core.selection.congestion_game import (
    SelectionGameConfig,
    profile_utilities,
    profile_utilities_reference,
    selection_counts,
)
from repro.workloads.generators import WorkloadBuilder


def _random_game(rng: random.Random, n: int):
    players = [
        ShardPlayer(i, rng.randint(1, 9), rng.choice([1.0, 2.0, 5.0]))
        for i in range(1, n + 1)
    ]
    config = MergingGameConfig(
        shard_reward=10.0,
        lower_bound=rng.randint(1, max(2, n * 5)),
        subslots=16,
        max_slots=50,
    )
    return players, config


class TestBestPureDeviation:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_on_random_profiles(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 40)
        players, config = _random_game(rng, n)
        for __ in range(20):
            profile = [rng.random() < 0.5 for __ in range(n)]
            assert best_pure_deviation(
                players, profile, config
            ) == best_pure_deviation_reference(players, profile, config)

    def test_matches_reference_on_degenerate_profiles(self):
        rng = random.Random(99)
        for n in (1, 2, 5):
            players, config = _random_game(rng, n)
            for profile in ([False] * n, [True] * n):
                assert best_pure_deviation(
                    players, profile, config
                ) == best_pure_deviation_reference(players, profile, config)


class TestProfileUtilities:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_on_random_profiles(self, seed):
        rng = random.Random(seed)
        tx_count = rng.randint(1, 60)
        miners = rng.randint(1, 12)
        fees = np.asarray(
            [rng.uniform(0.1, 100.0) for __ in range(tx_count)]
        )
        profile = [
            tuple(
                sorted(
                    rng.sample(range(tx_count), rng.randint(0, min(5, tx_count)))
                )
            )
            for __ in range(miners)
        ]
        vectorized = profile_utilities(fees, profile)
        reference = profile_utilities_reference(fees, profile)
        assert np.allclose(vectorized, reference, rtol=0, atol=1e-9)
        naive = np.zeros(tx_count, dtype=np.int64)
        for chosen in profile:
            for j in chosen:
                naive[j] += 1
        assert (selection_counts(tx_count, profile) == naive).all()

    def test_empty_cases(self):
        fees = np.asarray([1.0, 2.0])
        assert profile_utilities(fees, []) == []
        assert profile_utilities(fees, [(), ()]) == [0.0, 0.0]
        assert profile_utilities(fees, [(), (1,)]) == [0.0, 2.0]

    def test_outcome_utilities_match_reference(self):
        fees = [float(f) for f in range(1, 31)]
        outcome = BestReplyDynamics(
            SelectionGameConfig(capacity=2), seed=7
        ).run(fees, miners=6)
        assert np.allclose(
            outcome.utilities(),
            profile_utilities_reference(
                np.asarray(fees), list(outcome.profile)
            ),
            rtol=0,
            atol=1e-9,
        )


class TestCallGraphMemo:
    def test_interleaved_stream_matches_uncached_graph(self):
        """Memoized answers equal a cache-free graph's at every step."""
        builder = WorkloadBuilder(seed=4)
        rng = random.Random(4)
        txs = []
        for i in range(120):
            user = f"u{rng.randint(0, 15)}"
            if rng.random() < 0.7:
                txs.append(
                    builder.contract_call(
                        f"0x{user}", f"0xc{rng.randint(1, 4):039d}", fee=1
                    )
                )
            else:
                txs.append(
                    builder.direct_transfer(
                        f"0x{user}", f"0xu{rng.randint(16, 20)}", fee=1
                    )
                )

        cached = CallGraph()
        fresh = CallGraph()
        fresh._analysis.enabled = False  # the recompute-every-time oracle
        for tx in txs:
            cached.observe(tx)
            fresh.observe(tx)
            for probe in (tx.sender, txs[0].sender):
                assert cached.classify(probe) is fresh.classify(probe)
                assert cached.sole_contract_of(probe) == fresh.sole_contract_of(
                    probe
                )
        hits, misses = cached.cache_stats()
        assert hits > 0 and misses > 0
