"""Serial/parallel parity: the runtime's bit-identity contract.

Every fan-out point must produce the same bits under the serial executor
and a 2-worker process pool — the property DESIGN.md promises and the
benchmarks rely on when they compare wall clocks across executors.
"""

import pytest

from repro.consensus.miner import MinerIdentity
from repro.consensus.pow import PoWParameters
from repro.core.epoch import EpochManager
from repro.experiments import run_experiment
from repro.experiments.common import clear_experiment_caches
from repro.faults.plan import FaultPlan
from repro.net.network import LatencyModel
from repro.runtime import ProcessExecutor, SerialExecutor, parallel_map, use_executor
from repro.runtime.executor import fork_available
from repro.sim.campaign import Campaign
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import WorkloadBuilder, uniform_contract_workload

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parity needs the process executor"
)

PARALLEL = ProcessExecutor(workers=2)


@pytest.mark.parametrize("experiment_id", ["table1", "fig3c", "fig4b"])
def test_experiment_rows_bit_identical(experiment_id):
    with use_executor(SerialExecutor()):
        clear_experiment_caches()
        serial = run_experiment(experiment_id, quick=True, seed=3)
    with use_executor(PARALLEL):
        clear_experiment_caches()
        parallel = run_experiment(experiment_id, quick=True, seed=3)
    assert serial.rows == parallel.rows  # == on floats: bit-identical


def _campaign_fingerprint(executor):
    def batch(epoch):
        builder = WorkloadBuilder(seed=700 + epoch)
        return [
            builder.contract_call(
                f"0xu-par-e{epoch}-c{c}-{u}", f"0xc{c:039d}", fee=1 + u % 5
            )
            for c in range(1, 4)
            for u in range(12)
        ]

    miners = [MinerIdentity.create(f"par-{i}") for i in range(16)]
    campaign = Campaign(EpochManager(miners), base_seed=5, executor=executor)
    result = campaign.run([batch(e) for e in range(3)])
    return (
        result.confirmation_rate(),
        result.final_backlog,
        [
            (e.epoch_index, e.result.confirmed_transactions, e.result.makespan)
            for e in result.epochs
        ],
    )


def test_campaign_metrics_bit_identical():
    assert _campaign_fingerprint(SerialExecutor()) == _campaign_fingerprint(
        PARALLEL
    )


def _faulty_run(seed: int) -> tuple[float, ...]:
    """One lossy protocol run; every metric the fault layer influences."""
    miners = [MinerIdentity.create(f"parity-fault-{seed}-{i}") for i in range(4)]
    txs = uniform_contract_workload(total_txs=16, contract_shards=1, seed=seed)
    sim = ProtocolSimulation(
        miners,
        txs,
        config=ProtocolConfig(
            pow_params=PoWParameters(difficulty=0x40000 // 60),
            latency=LatencyModel(base_seconds=0.01, jitter_seconds=0.01),
            max_duration=2_000.0,
            seed=seed,
            fault_plan=FaultPlan.lossy(0.15),
            retransmit_interval=2.0,
        ),
    )
    result = sim.run()
    return (
        float(len(result.confirmed_tx_ids)),
        result.duration,
        float(result.drops),
        float(result.retransmissions),
    )


def test_fault_injected_runs_bit_identical_across_executors():
    seeds = [11, 12, 13]
    serial = parallel_map(_faulty_run, seeds, SerialExecutor())
    parallel = parallel_map(_faulty_run, seeds, PARALLEL)
    assert serial == parallel
    assert any(run[2] > 0 for run in serial)  # the fault plan really fired
