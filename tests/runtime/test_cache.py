"""Tests for repro.runtime.cache."""

from repro.runtime.cache import MemoCache, caching_disabled


class TestMemoCache:
    def test_memoizes_and_counts(self):
        cache = MemoCache()
        calls = []
        compute = lambda: calls.append(1) or len(calls)  # noqa: E731
        assert cache.get("k", compute) == 1
        assert cache.get("k", compute) == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_invalidate_forces_recompute(self):
        cache = MemoCache()
        values = iter([1, 2])
        assert cache.get("k", lambda: next(values)) == 1
        cache.invalidate("k")
        assert cache.get("k", lambda: next(values)) == 2

    def test_invalidate_absent_key_is_noop(self):
        MemoCache().invalidate("missing")

    def test_clear_empties(self):
        cache = MemoCache()
        cache.get("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0

    def test_bound_clears_wholesale(self):
        cache = MemoCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get(key, lambda: key)
        assert len(cache) == 1  # a+b evicted when c arrived

    def test_disabled_cache_always_computes(self):
        cache = MemoCache(enabled=False)
        values = iter([1, 2])
        assert cache.get("k", lambda: next(values)) == 1
        assert cache.get("k", lambda: next(values)) == 2
        assert len(cache) == 0

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_CACHE", "1")
        assert caching_disabled()
        assert MemoCache().enabled is False
        monkeypatch.setenv("REPRO_DISABLE_CACHE", "0")
        assert not caching_disabled()
        assert MemoCache().enabled is True
