"""Tests for repro.runtime.cache."""

from repro.runtime.cache import MemoCache, caching_disabled


class TestMemoCache:
    def test_memoizes_and_counts(self):
        cache = MemoCache()
        calls = []
        compute = lambda: calls.append(1) or len(calls)  # noqa: E731
        assert cache.get("k", compute) == 1
        assert cache.get("k", compute) == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_invalidate_forces_recompute(self):
        cache = MemoCache()
        values = iter([1, 2])
        assert cache.get("k", lambda: next(values)) == 1
        cache.invalidate("k")
        assert cache.get("k", lambda: next(values)) == 2

    def test_invalidate_absent_key_is_noop(self):
        MemoCache().invalidate("missing")

    def test_clear_empties(self):
        cache = MemoCache()
        cache.get("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0

    def test_bound_clears_wholesale(self):
        cache = MemoCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get(key, lambda: key)
        assert len(cache) == 1  # a+b evicted when c arrived

    def test_disabled_cache_always_computes(self):
        cache = MemoCache(enabled=False)
        values = iter([1, 2])
        assert cache.get("k", lambda: next(values)) == 1
        assert cache.get("k", lambda: next(values)) == 2
        assert len(cache) == 0

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_CACHE", "1")
        assert caching_disabled()
        assert MemoCache().enabled is False
        monkeypatch.setenv("REPRO_DISABLE_CACHE", "0")
        assert not caching_disabled()
        assert MemoCache().enabled is True

    def test_kill_switch_is_snapshotted_at_construction(self, monkeypatch):
        """The documented contract: REPRO_DISABLE_CACHE is read once when
        a cache is constructed. Flipping it afterwards does not change an
        existing cache's behavior — only new caches see the new value."""
        monkeypatch.delenv("REPRO_DISABLE_CACHE", raising=False)
        live = MemoCache()
        monkeypatch.setenv("REPRO_DISABLE_CACHE", "1")
        # The pre-existing cache keeps caching...
        values = iter([1, 2])
        assert live.get("k", lambda: next(values)) == 1
        assert live.get("k", lambda: next(values)) == 1
        assert live.enabled is True
        # ...while a cache built under the flag is born disabled.
        assert MemoCache().enabled is False

    def test_explicit_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_CACHE", "1")
        assert MemoCache(enabled=True).enabled is True


class TestNamedCacheStats:
    def test_named_caches_aggregate_by_name(self):
        from repro.runtime.cache import named_cache_stats

        a = MemoCache(name="test.stats.alpha")
        b = MemoCache(name="test.stats.alpha")
        a.get("k", lambda: 1)
        a.get("k", lambda: 1)
        b.get("k", lambda: 2)
        stats = named_cache_stats()["test.stats.alpha"]
        assert stats["instances"] == 2
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["entries"] == 2
        assert stats["hit_rate"] == 1 / 3

    def test_anonymous_caches_are_not_tracked(self):
        from repro.runtime.cache import named_cache_stats

        MemoCache().get("k", lambda: 1)
        assert None not in named_cache_stats()
