"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "table1" in out and "security" in out

    def test_run_quick(self, capsys):
        assert main(["run", "fig1d", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "safety_33pct" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "fig4c", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "comm_times_per_shard" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
