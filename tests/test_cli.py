"""Tests for the python -m repro command-line interface."""

import json
import pathlib

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "table1" in out and "security" in out

    def test_run_quick(self, capsys):
        assert main(["run", "fig1d", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "safety_33pct" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "fig4c", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "comm_times_per_shard" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestMinerOverride:
    def test_run_with_miners_pins_fig1d_axis(self, capsys):
        assert main(["run", "fig1d", "--quick", "--miners", "30"]) == 0
        out = capsys.readouterr().out
        # The sweep collapses to the single requested shard size.
        rows = [line for line in out.splitlines() if line[:1].isdigit()]
        assert len(rows) == 1
        assert rows[0].startswith("30")

    def test_nodes_is_an_alias(self, capsys):
        assert main(["run", "fig1d", "--quick", "--nodes", "30"]) == 0
        out = capsys.readouterr().out
        rows = [line for line in out.splitlines() if line[:1].isdigit()]
        assert rows and rows[0].startswith("30")

    def test_non_positive_miners_rejected(self, capsys):
        assert main(["run", "fig1d", "--miners", "0"]) == 2
        err = capsys.readouterr().err
        assert "positive" in err and "0" in err

    def test_negative_miners_rejected(self, capsys):
        assert main(["run", "fig1d", "--miners", "-3"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_experiment_without_miner_axis_rejected(self, capsys):
        assert main(["run", "table1", "--quick", "--miners", "5"]) == 2
        err = capsys.readouterr().err
        assert "no miner axis" in err
        # The error teaches which experiments do take the override.
        assert "fig1d" in err and "fig3a" in err

    def test_trace_record_non_positive_miners_rejected(self, tmp_path, capsys):
        code = main(
            ["trace", "record", str(tmp_path / "t.jsonl"), "--miners", "0"]
        )
        assert code == 2
        assert "positive" in capsys.readouterr().err

    def test_trace_record_nodes_alias(self, tmp_path, capsys):
        target = tmp_path / "t.jsonl"
        assert (
            main(["trace", "record", str(target), "--txs", "8", "--nodes", "3"])
            == 0
        )
        assert target.exists()


class TestRunTrace:
    def test_run_quick_with_trace_dumps_jsonl(self, tmp_path, capsys):
        target = tmp_path / "fig3c.jsonl"
        assert main(["run", "fig3c", "--quick", "--trace", str(target)]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "digest" in out
        assert target.exists()
        first = json.loads(target.read_text().splitlines()[0])
        assert "seq" in first and "name" in first

    def test_unknown_experiment_rejected_with_trace(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "fig99", "--trace", str(tmp_path / "x.jsonl")])


class TestTraceCommands:
    def _record(self, tmp_path, name, *extra):
        target = tmp_path / name
        args = ["trace", "record", str(target), "--txs", "12", "--miners", "4"]
        args.extend(extra)
        assert main(args) == 0
        return target

    def test_record_then_profile(self, tmp_path, capsys):
        trace = self._record(tmp_path, "run.jsonl")
        out = capsys.readouterr().out
        assert "digest" in out
        assert main(["trace", "profile", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-phase attribution" in out
        assert "transaction lineage" in out

    def test_fast_vs_legacy_diff_is_clean(self, tmp_path, capsys):
        fast = self._record(tmp_path, "fast.jsonl", "--engine", "fast")
        legacy = self._record(tmp_path, "legacy.jsonl", "--engine", "legacy")
        assert main(["trace", "diff", str(fast), str(legacy)]) == 0
        out = capsys.readouterr().out
        assert "no deterministic divergence" in out

    def test_diff_flags_a_perturbed_record(self, tmp_path, capsys):
        trace = self._record(tmp_path, "run.jsonl")
        lines = trace.read_text().splitlines()
        perturbed = json.loads(lines[4])
        perturbed["time"] = (perturbed.get("time") or 0.0) + 123.0
        lines[4] = json.dumps(perturbed, sort_keys=True)
        other = tmp_path / "perturbed.jsonl"
        other.write_text("\n".join(lines) + "\n")
        assert main(["trace", "diff", str(trace), str(other)]) == 1
        out = capsys.readouterr().out
        assert "first deterministic divergence at record 4" in out

    def test_digest_matches_recorded_digest(self, tmp_path, capsys):
        trace = self._record(tmp_path, "run.jsonl")
        recorded = capsys.readouterr().out.split("digest ")[-1].strip()
        assert main(["trace", "digest", str(trace)]) == 0
        assert capsys.readouterr().out.strip() == recorded

    def test_missing_trace_file_is_a_data_error(self, tmp_path, capsys):
        assert main(["trace", "profile", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_trace_names_the_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"seq": 0, "name": "a"}\n{oops\n')
        assert main(["trace", "profile", str(bad)]) == 2
        assert "line 2" in capsys.readouterr().err


class TestBenchCommands:
    RESULTS = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "results"

    def test_history_over_committed_results(self, capsys):
        assert main(["bench", "history"]) == 0
        out = capsys.readouterr().out
        assert "benchmark records:" in out

    def test_check_passes_on_committed_results(self, capsys):
        assert main(["bench", "check"]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_check_fails_on_injected_regression(self, tmp_path, capsys):
        def degrade(node):
            # Only *tracked* speedups count — "informational" keys (e.g.
            # parallel-vs-serial on a 1-CPU host) are excluded from the
            # gate on purpose, so degrading them must not trip it.
            found = False
            if isinstance(node, dict):
                for key, value in node.items():
                    if (
                        isinstance(value, (int, float))
                        and not isinstance(value, bool)
                        and "speedup" in key
                        and "informational" not in key
                    ):
                        node[key] = value * 0.5
                        found = True
                    elif isinstance(value, (dict, list)):
                        found = degrade(value) or found
            elif isinstance(node, list):
                for value in node:
                    found = degrade(value) or found
            return found

        for source in sorted(self.RESULTS.glob("BENCH_*.json")):
            record = json.loads(source.read_text())
            if degrade(record):
                break
        else:
            raise AssertionError("no record with a tracked speedup metric")
        candidate_dir = tmp_path / "candidate"
        candidate_dir.mkdir()
        (candidate_dir / source.name).write_text(json.dumps(record))
        assert (
            main(["bench", "check", "--candidate", str(candidate_dir)]) == 1
        )
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_check_errors_on_empty_baseline_dir(self, tmp_path, capsys):
        assert main(["bench", "check", "--baseline", str(tmp_path)]) == 2
        assert "no BENCH_*.json records" in capsys.readouterr().err


class TestScenarioCommands:
    def test_list_names_all_five(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("takeover", "double-spend", "griefing", "eclipse", "adaptive"):
            assert name in out
        assert "Eq. 3" in out  # paper anchors ride along

    def test_run_prints_report_and_digest(self, capsys):
        assert main(["scenario", "run", "double-spend"]) == 0
        out = capsys.readouterr().out
        assert "safety_violated: False" in out
        assert "detected: True" in out
        assert "extras.blocked_pairs:" in out
        assert "trace digest " in out

    def test_run_writes_trace_and_json(self, tmp_path, capsys):
        trace = tmp_path / "ds.jsonl"
        report = tmp_path / "ds.json"
        assert main([
            "scenario", "run", "double-spend",
            "--trace", str(trace), "--json", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "report written to" in out
        first = json.loads(trace.read_text().splitlines()[0])
        assert "seq" in first and "name" in first
        payload = json.loads(report.read_text())
        for key in ("scenario", "seed", "engine", "safety_violated",
                    "detected", "time_to_detect", "extras"):
            assert key in payload

    def test_unknown_scenario_is_a_data_error(self, capsys):
        assert main(["scenario", "run", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'nosuch'" in err
        assert "takeover" in err  # the error lists what is available

    def test_small_sweep_within_tolerance(self, tmp_path, capsys):
        target = tmp_path / "sweep.json"
        assert main([
            "scenario", "sweep", "--points", "5:0.2", "--trials", "12",
            "--json", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "empirical" in out and "Eq. 3" in out
        (point,) = json.loads(target.read_text())
        assert point["miners"] == 5
        assert point["within_tolerance"] is True

    def test_malformed_points_is_a_data_error(self, capsys):
        assert main(["scenario", "sweep", "--points", "bogus"]) == 2
        assert "miners:fraction" in capsys.readouterr().err
