"""Tests for repro.core.shard_formation (Sec. III-A)."""

import pytest

from repro.core.shard_formation import (
    MAXSHARD_ID,
    form_shards,
    partition_transactions,
)
from repro.errors import ShardAssignmentError
from repro.workloads.generators import (
    three_input_workload,
    uniform_contract_workload,
)
from tests.conftest import CONTRACT_A, CONTRACT_B, make_call, make_transfer


class TestFormShards:
    def test_single_contract_senders_create_shards(self):
        txs = [make_call("0xuA", CONTRACT_A), make_call("0xuB", CONTRACT_B)]
        shard_map, __ = form_shards(txs)
        assert shard_map.shard_count == 3  # 2 contracts + MaxShard
        assert set(shard_map.contract_to_shard.values()) == {1, 2}

    def test_multi_contract_sender_creates_no_shard(self):
        txs = [
            make_call("0xuC", CONTRACT_A),
            make_call("0xuC", CONTRACT_B, nonce=1),
        ]
        shard_map, __ = form_shards(txs)
        assert shard_map.shard_count == 1  # only the MaxShard

    def test_mixed_population(self):
        txs = [
            make_call("0xuA", CONTRACT_A),  # single-contract: shardable
            make_call("0xuC", CONTRACT_A),  # multi-contract: MaxShard
            make_call("0xuC", CONTRACT_B, nonce=1),
            make_transfer("0xuX", "0xuY"),  # direct: MaxShard
        ]
        shard_map, __ = form_shards(txs)
        assert CONTRACT_A in shard_map.contract_to_shard
        assert CONTRACT_B not in shard_map.contract_to_shard

    def test_shard_ids_deterministic(self):
        txs = [make_call("0xuA", CONTRACT_A), make_call("0xuB", CONTRACT_B)]
        first, __ = form_shards(txs)
        second, __ = form_shards(list(reversed(txs)))
        assert first.contract_to_shard == second.contract_to_shard

    def test_unknown_contract_lookup_raises(self):
        shard_map, __ = form_shards([make_call("0xuA", CONTRACT_A)])
        with pytest.raises(ShardAssignmentError):
            shard_map.shard_of_contract("0xghost")


class TestRouting:
    def test_single_contract_tx_routes_to_contract_shard(self):
        txs = [make_call("0xuA", CONTRACT_A)]
        shard_map, graph = form_shards(txs)
        shard = shard_map.shard_of_transaction(txs[0], graph)
        assert shard == shard_map.shard_of_contract(CONTRACT_A)
        assert shard != MAXSHARD_ID

    def test_multi_contract_tx_routes_to_maxshard(self):
        txs = [
            make_call("0xuC", CONTRACT_A),
            make_call("0xuC", CONTRACT_B, nonce=1),
        ]
        shard_map, graph = form_shards(txs)
        assert shard_map.shard_of_transaction(txs[0], graph) == MAXSHARD_ID

    def test_direct_transfer_routes_to_maxshard(self):
        txs = [make_transfer("0xuX", "0xuY")]
        shard_map, graph = form_shards(txs)
        assert shard_map.shard_of_transaction(txs[0], graph) == MAXSHARD_ID

    def test_fig1c_mixed_sender_routes_to_maxshard(self):
        """User F: contract call AND direct transfer — both to MaxShard."""
        txs = [
            make_call("0xuF", CONTRACT_A),
            make_transfer("0xuF", "0xuH", nonce=1),
        ]
        shard_map, graph = form_shards(txs)
        assert shard_map.shard_of_transaction(txs[0], graph) == MAXSHARD_ID
        assert shard_map.shard_of_transaction(txs[1], graph) == MAXSHARD_ID


class TestPartition:
    def test_uniform_workload_partition(self):
        txs = uniform_contract_workload(total_txs=200, contract_shards=8, seed=1)
        partition = partition_transactions(txs)
        sizes = partition.shard_sizes
        assert len(sizes) == 9
        assert sum(sizes.values()) == 200
        assert all(size in (22, 23) for size in sizes.values())

    def test_fractions_sum_to_100(self):
        txs = uniform_contract_workload(total_txs=100, contract_shards=4, seed=2)
        partition = partition_transactions(txs)
        assert sum(partition.fractions().values()) == pytest.approx(100.0)

    def test_empty_workload_fractions(self):
        partition = partition_transactions([])
        assert partition.total_transactions == 0
        assert all(f == 0.0 for f in partition.fractions().values())

    def test_small_shards_detection(self):
        txs = [make_call("0xuA", CONTRACT_A)] + [
            make_call(f"0xuB{i}", CONTRACT_B) for i in range(30)
        ]
        partition = partition_transactions(txs)
        shard_map, __ = form_shards(txs)
        small = partition.small_shards(lower_bound=10)
        assert small == [shard_map.shard_of_contract(CONTRACT_A)]

    def test_maxshard_never_listed_small(self):
        txs = [make_transfer("0xuX", "0xuY")]
        partition = partition_transactions(txs)
        assert partition.small_shards(lower_bound=10) == []

    def test_three_input_txs_all_maxshard(self):
        """The Fig. 4(b) invariant: multi-input transactions never leave
        the MaxShard, so they need zero cross-shard communication."""
        txs = three_input_workload(100, seed=3)
        partition = partition_transactions(txs)
        assert len(partition.by_shard[MAXSHARD_ID]) == 100

    def test_every_tx_lands_in_exactly_one_shard(self):
        txs = uniform_contract_workload(total_txs=60, contract_shards=3, seed=4)
        partition = partition_transactions(txs)
        ids = [tx.tx_id for shard in partition.by_shard.values() for tx in shard]
        assert len(ids) == len(set(ids)) == 60
