"""Tests for repro.core.epoch — the full dynamic epoch cycle."""

import pytest

from repro.consensus.miner import MinerIdentity
from repro.core.epoch import EpochConfig, EpochManager
from repro.core.merging.game import MergingGameConfig
from repro.core.shard_formation import MAXSHARD_ID
from repro.errors import ShardingError
from repro.sim.config import SimulationConfig, TimingModel
from repro.sim.simulator import ShardedSimulation
from repro.workloads.generators import (
    small_shard_workload,
    uniform_contract_workload,
)

FAST = TimingModel.low_variance(interval=1.0, shape=48.0)


@pytest.fixture(scope="module")
def manager():
    miners = [MinerIdentity.create(f"epoch-{i}") for i in range(24)]
    return EpochManager(miners)


@pytest.fixture(scope="module")
def plan(manager):
    txs = uniform_contract_workload(total_txs=120, contract_shards=3, seed=1)
    return manager.run_epoch(0, txs)


class TestEpochPlan:
    def test_every_miner_has_effective_shard(self, plan):
        for public in plan.assignment.shard_of:
            assert plan.shard_of_miner(public) in plan.partition.by_shard

    def test_membership_verification(self, plan):
        for public in plan.assignment.shard_of:
            assert plan.verify_miner(public, plan.shard_of_miner(public))
            assert not plan.verify_miner(public, 987)

    def test_stranger_rejected(self, plan):
        assert not plan.verify_miner("pk-stranger", 0)

    def test_specs_cover_workload(self, plan):
        specs = plan.to_specs()
        covered = sum(len(spec.transactions) for spec in specs)
        assert covered == plan.partition.total_transactions

    def test_specs_simulate(self, plan):
        specs = plan.to_specs()
        result = ShardedSimulation(
            specs, SimulationConfig(timing=FAST, seed=2)
        ).run()
        assert result.all_confirmed

    def test_selection_runs_in_multi_miner_shards(self, plan):
        multi_miner_inputs = {
            s.shard_id for s in plan.packet.selection_inputs
        }
        for shard_id in multi_miner_inputs:
            assert len(plan.assignment.members_of(shard_id)) >= 2

    def test_assigned_ids_belong_to_miner_shard(self, plan):
        by_shard_ids = {
            shard: {tx.tx_id for tx in txs}
            for shard, txs in plan.partition.by_shard.items()
        }
        for public, shard in plan.assignment.shard_of.items():
            for tx_id in plan.assigned_tx_ids(public):
                assert tx_id in by_shard_ids[shard]


class TestEpochDynamics:
    def test_epochs_reshuffle_miners(self, manager):
        txs = uniform_contract_workload(total_txs=120, contract_shards=3, seed=4)
        plan_a = manager.run_epoch(10, txs)
        plan_b = manager.run_epoch(11, txs)
        assert plan_a.randomness != plan_b.randomness
        assert plan_a.assignment.shard_of != plan_b.assignment.shard_of

    def test_small_shards_merge_in_plan(self):
        miners = [MinerIdentity.create(f"merge-epoch-{i}") for i in range(40)]
        config = EpochConfig(
            merge_config=MergingGameConfig(
                shard_reward=10.0, lower_bound=10, subslots=16
            )
        )
        manager = EpochManager(miners, config)
        txs, __ = small_shard_workload(
            total_txs=150, shard_count=8, small_shard_sizes=[3, 4, 5, 4], seed=5
        )
        plan = manager.run_epoch(0, txs)
        merged_map = plan.replay.merged_shard_map
        # At least one small shard collapsed into another.
        assert any(old != new for old, new in merged_map.items())
        # And the plan still simulates to full confirmation.
        result = ShardedSimulation(
            plan.to_specs(), SimulationConfig(timing=FAST, seed=6)
        ).run()
        assert result.all_confirmed

    def test_deterministic_replay_across_managers(self):
        """Two independent nodes with the same view derive the same plan."""
        miners = [MinerIdentity.create(f"det-{i}") for i in range(12)]
        txs = uniform_contract_workload(total_txs=60, contract_shards=2, seed=7)
        plan_x = EpochManager(miners).run_epoch(3, txs)
        plan_y = EpochManager(miners).run_epoch(3, txs)
        assert plan_x.randomness == plan_y.randomness
        assert plan_x.assignment.shard_of == plan_y.assignment.shard_of
        assert plan_x.packet.digest() == plan_y.packet.digest()
        assert plan_x.replay.merged_shard_map == plan_y.replay.merged_shard_map

    def test_validation(self, manager):
        with pytest.raises(ShardingError):
            EpochManager([])
        with pytest.raises(ShardingError):
            manager.run_epoch(0, [])
