"""Tests for repro.core.serialization — the packet wire format."""

import pytest

from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.core.selection.congestion_game import SelectionGameConfig
from repro.core.serialization import (
    packet_from_dict,
    packet_from_json,
    packet_to_dict,
    packet_to_json,
)
from repro.core.unification import (
    ShardSelectionInput,
    UnificationPacket,
    UnifiedReplay,
)
from repro.errors import UnificationError


def full_packet() -> UnificationPacket:
    return UnificationPacket(
        epoch_seed="epoch-9",
        leader_public="pk-leader",
        randomness="r" * 64,
        merge_players=(ShardPlayer(1, 5, 2.0), ShardPlayer(2, 7, 3.0)),
        merge_config=MergingGameConfig(shard_reward=10.0, lower_bound=10),
        merge_initial=(0.4, 0.6),
        selection_inputs=(
            ShardSelectionInput(
                shard_id=3,
                tx_ids=("t1", "t2", "t3"),
                fees=(1.0, 2.0, 3.0),
                miners=("pk-a", "pk-b"),
                initial_profile=((0,), (1,)),
            ),
        ),
        selection_config=SelectionGameConfig(capacity=2),
    )


def minimal_packet() -> UnificationPacket:
    return UnificationPacket(
        epoch_seed="e", leader_public="pk", randomness="x" * 64
    )


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [full_packet, minimal_packet])
    def test_dict_round_trip(self, factory):
        packet = factory()
        assert packet_from_dict(packet_to_dict(packet)) == packet

    @pytest.mark.parametrize("factory", [full_packet, minimal_packet])
    def test_json_round_trip_preserves_digest(self, factory):
        packet = factory()
        decoded = packet_from_json(packet_to_json(packet))
        assert decoded.digest() == packet.digest()

    def test_json_is_canonical(self):
        a = packet_to_json(full_packet())
        b = packet_to_json(full_packet())
        assert a == b

    def test_replay_from_decoded_packet_matches(self):
        """The receiver's replay of a transmitted packet equals the
        sender's local replay — the wire format preserves unification."""
        packet = full_packet()
        local = UnifiedReplay(packet)
        remote = UnifiedReplay(packet_from_json(packet_to_json(packet)))
        assert local.merged_shard_map == remote.merged_shard_map
        assert local.assigned_tx_ids(3, "pk-a") == remote.assigned_tx_ids(3, "pk-a")


class TestTampering:
    def test_tampered_json_changes_digest(self):
        packet = full_packet()
        text = packet_to_json(packet).replace('"pk-leader"', '"pk-evil"')
        assert packet_from_json(text).digest() != packet.digest()

    def test_malformed_json_rejected(self):
        with pytest.raises(UnificationError, match="not valid JSON"):
            packet_from_json("{nope")

    def test_non_object_json_rejected(self):
        with pytest.raises(UnificationError, match="object"):
            packet_from_json("[1,2,3]")

    def test_missing_fields_rejected(self):
        with pytest.raises(UnificationError, match="malformed"):
            packet_from_dict({"epoch_seed": "e"})

    def test_invalid_config_values_surface(self):
        data = packet_to_dict(full_packet())
        data["merge_config"]["lower_bound"] = 0  # violates game invariants
        with pytest.raises(Exception):
            packet_from_dict(data)
