"""Bitset: the dense seen-index set behind streaming-scale tracking."""

from __future__ import annotations

import random

import pytest

from repro.core.bitset import Bitset


def test_empty_bitset():
    bits = Bitset()
    assert len(bits) == 0
    assert 0 not in bits
    assert list(bits) == []


def test_add_and_membership():
    bits = Bitset()
    assert bits.add(5)
    assert 5 in bits
    assert len(bits) == 1
    # Re-adding is idempotent and reports "not new".
    assert not bits.add(5)
    assert len(bits) == 1


def test_growth_beyond_size_hint():
    bits = Bitset(size_hint=8)
    assert bits.add(1000)
    assert 1000 in bits
    assert 999 not in bits
    assert 1001 not in bits


def test_negative_index_rejected():
    bits = Bitset()
    with pytest.raises(ValueError):
        bits.add(-1)
    assert -1 not in bits


def test_negative_size_hint_rejected():
    with pytest.raises(ValueError):
        Bitset(size_hint=-4)


def test_iteration_ascending():
    bits = Bitset()
    for index in (17, 3, 64, 0, 8):
        bits.add(index)
    assert list(bits) == [0, 3, 8, 17, 64]


def test_matches_set_semantics():
    """Differential check against set[int] over random operations."""
    rng = random.Random(42)
    bits = Bitset()
    reference: set[int] = set()
    for __ in range(2000):
        index = rng.randrange(0, 500)
        assert bits.add(index) == (index not in reference)
        reference.add(index)
    assert len(bits) == len(reference)
    assert list(bits) == sorted(reference)
    for probe in range(500):
        assert (probe in bits) == (probe in reference)


def test_memory_is_bitmap_dense():
    bits = Bitset()
    bits.add(1_000_000)
    # One bit per index: a million-index capacity costs ~125 KB.
    assert len(bits._bits) <= 1_000_000 // 8 + 1
