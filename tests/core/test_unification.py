"""Tests for repro.core.unification (Sec. IV-C)."""

import dataclasses

import pytest

from repro.chain.block import Block
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.core.selection.congestion_game import SelectionGameConfig
from repro.core.unification import (
    ShardSelectionInput,
    UnificationPacket,
    UnifiedReplay,
    unification_message_count,
)
from repro.errors import UnificationError
from tests.conftest import make_call


MERGE_CONFIG = MergingGameConfig(shard_reward=10.0, lower_bound=10)


def make_packet(with_merge=True, with_selection=True, txs=None):
    txs = txs if txs is not None else [make_call(f"0xu{i}", fee=i + 1) for i in range(6)]
    selection_inputs = ()
    if with_selection:
        selection_inputs = (
            ShardSelectionInput(
                shard_id=1,
                tx_ids=tuple(tx.tx_id for tx in txs),
                fees=tuple(float(tx.fee) for tx in txs),
                miners=("pk-a", "pk-b", "pk-c"),
            ),
        )
    return (
        UnificationPacket(
            epoch_seed="epoch-1",
            leader_public="pk-leader",
            randomness="r" * 64,
            merge_players=(
                tuple(ShardPlayer(i, 5, 2.0) for i in range(1, 6))
                if with_merge
                else ()
            ),
            merge_config=MERGE_CONFIG if with_merge else None,
            selection_inputs=selection_inputs,
            selection_config=SelectionGameConfig(capacity=2),
        ),
        txs,
    )


class TestPacket:
    def test_digest_is_binding(self):
        a, __ = make_packet()
        b, __ = make_packet()
        # Same structure but fresh tx ids -> different digest.
        assert a.digest() != b.digest()

    def test_digest_is_stable(self):
        packet, __ = make_packet()
        assert packet.digest() == packet.digest()

    def test_derived_seeds_differ_by_purpose(self):
        packet, __ = make_packet()
        assert packet.derived_seed("merging") != packet.derived_seed("selection-1")

    def test_selection_input_validation(self):
        with pytest.raises(UnificationError):
            ShardSelectionInput(
                shard_id=1, tx_ids=("a",), fees=(1.0, 2.0), miners=("pk",)
            )


def _bump_fee(packet):
    shard_input = packet.selection_inputs[0]
    fees = (shard_input.fees[0] + 1.0,) + shard_input.fees[1:]
    return dataclasses.replace(
        packet,
        selection_inputs=(dataclasses.replace(shard_input, fees=fees),),
    )


def _swap_miner_order(packet):
    shard_input = packet.selection_inputs[0]
    miners = (shard_input.miners[1], shard_input.miners[0]) + shard_input.miners[2:]
    return dataclasses.replace(
        packet,
        selection_inputs=(dataclasses.replace(shard_input, miners=miners),),
    )


def _set_initial_profile(packet):
    shard_input = packet.selection_inputs[0]
    profile = tuple((i,) for i in range(len(shard_input.miners)))
    return dataclasses.replace(
        packet,
        selection_inputs=(
            dataclasses.replace(shard_input, initial_profile=profile),
        ),
    )


def _drop_tx(packet):
    shard_input = packet.selection_inputs[0]
    return dataclasses.replace(
        packet,
        selection_inputs=(
            dataclasses.replace(
                shard_input,
                tx_ids=shard_input.tx_ids[1:],
                fees=shard_input.fees[1:],
            ),
        ),
    )


TAMPERINGS = {
    "epoch_seed": lambda p: dataclasses.replace(p, epoch_seed="epoch-2"),
    "leader_public": lambda p: dataclasses.replace(p, leader_public="pk-usurper"),
    "randomness": lambda p: dataclasses.replace(p, randomness="s" * 64),
    "merge_players": lambda p: dataclasses.replace(
        p, merge_players=p.merge_players[:-1]
    ),
    "merge_config": lambda p: dataclasses.replace(
        p, merge_config=MergingGameConfig(shard_reward=99.0, lower_bound=10)
    ),
    "merge_initial": lambda p: dataclasses.replace(p, merge_initial=(0.5, 0.5)),
    "selection_fees": _bump_fee,
    "selection_miner_order": _swap_miner_order,
    "selection_initial_profile": _set_initial_profile,
    "selection_tx_ids": _drop_tx,
    "selection_config": lambda p: dataclasses.replace(
        p, selection_config=SelectionGameConfig(capacity=9)
    ),
}


class TestDigestTamperDetection:
    """Every field of the packet is bound by the digest commitment."""

    @pytest.mark.parametrize("field", sorted(TAMPERINGS))
    def test_mutation_changes_digest(self, field):
        packet, __ = make_packet()
        tampered = TAMPERINGS[field](packet)
        assert tampered != packet
        assert tampered.digest() != packet.digest()

    def test_tamperings_produce_pairwise_distinct_digests(self):
        packet, __ = make_packet()
        digests = {TAMPERINGS[field](packet).digest() for field in TAMPERINGS}
        assert len(digests) == len(TAMPERINGS)

    def test_initial_profile_coverage_checked(self):
        with pytest.raises(UnificationError):
            ShardSelectionInput(
                shard_id=1,
                tx_ids=("a",),
                fees=(1.0,),
                miners=("pk-a", "pk-b"),
                initial_profile=((0,),),
            )


class TestReplayDeterminism:
    def test_two_miners_replay_identically(self):
        """The core Sec. IV-C claim: identical inputs -> identical outputs,
        so honest miners verify behavior by local recomputation."""
        packet, __ = make_packet()
        replay_x = UnifiedReplay(packet)
        replay_y = UnifiedReplay(packet)
        assert replay_x.merged_shard_map == replay_y.merged_shard_map
        for miner in ("pk-a", "pk-b", "pk-c"):
            assert replay_x.assigned_tx_ids(1, miner) == replay_y.assigned_tx_ids(
                1, miner
            )

    def test_no_merge_scheduled(self):
        packet, __ = make_packet(with_merge=False)
        assert UnifiedReplay(packet).merging_result is None

    def test_merged_shard_map_canonical_representative(self):
        packet, __ = make_packet()
        replay = UnifiedReplay(packet)
        mapping = replay.merged_shard_map
        for outcome in replay.merging_result.new_shards:
            representative = min(outcome.merged_shards)
            for shard in outcome.merged_shards:
                assert mapping[shard] == representative

    def test_merged_with_lists_companions(self):
        packet, __ = make_packet()
        replay = UnifiedReplay(packet)
        for outcome in replay.merging_result.new_shards:
            for shard in outcome.merged_shards:
                assert set(replay.merged_with(shard)) == set(outcome.merged_shards)

    def test_unknown_miner_rejected(self):
        packet, __ = make_packet()
        with pytest.raises(UnificationError):
            UnifiedReplay(packet).assigned_tx_ids(1, "pk-stranger")

    def test_unknown_shard_rejected(self):
        packet, __ = make_packet()
        with pytest.raises(UnificationError):
            UnifiedReplay(packet).assigned_tx_ids(99, "pk-a")


class TestBlockVerdicts:
    def block_of(self, miner, txs, shard=1):
        return Block.build(
            parent_hash=Block.genesis(shard).block_hash,
            miner=miner,
            shard_id=shard,
            height=1,
            timestamp=1.0,
            transactions=txs,
        )

    def test_conforming_block_passes(self):
        packet, txs = make_packet()
        replay = UnifiedReplay(packet)
        assigned_ids = set(replay.assigned_tx_ids(1, "pk-a"))
        assigned_txs = [tx for tx in txs if tx.tx_id in assigned_ids]
        block = self.block_of("pk-a", assigned_txs)
        assert replay.block_follows_selection(block)

    def test_selection_liar_detected(self):
        """A miner packing a transaction assigned to someone else."""
        packet, txs = make_packet()
        replay = UnifiedReplay(packet)
        assigned_a = set(replay.assigned_tx_ids(1, "pk-a"))
        stolen = [tx for tx in txs if tx.tx_id not in assigned_a]
        assert stolen, "test needs at least one non-assigned tx"
        block = self.block_of("pk-a", stolen[:1])
        assert not replay.block_follows_selection(block)

    def test_empty_block_conforms(self):
        packet, __ = make_packet()
        replay = UnifiedReplay(packet)
        assert replay.block_follows_selection(self.block_of("pk-a", []))

    def test_stranger_block_fails(self):
        packet, txs = make_packet()
        replay = UnifiedReplay(packet)
        block = self.block_of("pk-stranger", txs[:1])
        assert not replay.block_follows_selection(block)

    def test_merge_claim_consistency(self):
        packet, __ = make_packet()
        replay = UnifiedReplay(packet)
        mapping = replay.merged_shard_map
        shard, merged_into = next(iter(mapping.items()))
        assert replay.shard_claim_consistent_with_merge(shard, merged_into)
        assert not replay.shard_claim_consistent_with_merge(shard, merged_into + 99)


class TestMessageCount:
    def test_constant_two(self):
        """Fig. 4(c): two communications per shard, always."""
        for shards in range(1, 10):
            assert unification_message_count(shards) == 2

    def test_zero_shards(self):
        assert unification_message_count(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(UnificationError):
            unification_message_count(-1)
