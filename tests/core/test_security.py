"""Tests for repro.core.security (Sec. III-B, IV-D)."""

import math

import pytest

from repro.core import security
from repro.errors import ReproError


class TestShardSafety:
    def test_safety_plus_corruption_is_one(self):
        for n in (10, 30, 50):
            total = security.shard_safety(n, 0.25) + (
                security.shard_corruption_probability(n, 0.25)
            )
            assert total == pytest.approx(1.0)

    def test_bigger_shards_are_safer(self):
        """Fig. 1(d): 'a shard with more miners is harder to be corrupted'."""
        safeties = [security.shard_safety(n, 0.33) for n in (21, 41, 81)]
        assert safeties[0] < safeties[1] < safeties[2]

    def test_weaker_adversary_safer(self):
        assert security.shard_safety(30, 0.25) > security.shard_safety(30, 0.33)

    def test_paper_caption_claim(self):
        """'Given a 33% attack in a shard with 30 miners, the probability
        to corrupt the system is almost 0.'"""
        assert security.shard_corruption_probability(30, 0.33) < 0.05

    def test_zero_adversary_perfectly_safe(self):
        assert security.shard_safety(10, 0.0) == 1.0

    def test_bft_threshold_is_stricter(self):
        pow_safety = security.shard_safety(30, 0.25, security.POW_THRESHOLD)
        bft_safety = security.shard_safety(30, 0.25, security.BFT_THRESHOLD)
        assert bft_safety < pow_safety

    def test_input_validation(self):
        with pytest.raises(ReproError):
            security.shard_safety(0, 0.25)
        with pytest.raises(ReproError):
            security.shard_safety(10, 1.0)

    def test_fig1d_curves_shape(self):
        curves = security.fig1d_curves(range(20, 101, 20))
        assert set(curves) == {0.25, 0.33}
        assert all(len(v) == 5 for v in curves.values())

    def test_matches_monte_carlo(self):
        closed = security.shard_corruption_probability(15, 0.33)
        empirical = security.empirical_shard_corruption(
            15, 0.33, trials=40_000, seed=1
        )
        assert empirical == pytest.approx(closed, abs=0.01)


class TestGeometricSum:
    def test_finite_rounds(self):
        assert security.geometric_adversary_sum(0.5, rounds=2) == pytest.approx(1.75)

    def test_infinite_limit(self):
        assert security.geometric_adversary_sum(0.25) == pytest.approx(4.0 / 3.0)

    def test_zero_adversary(self):
        assert security.geometric_adversary_sum(0.0, rounds=5) == 1.0
        assert security.geometric_adversary_sum(0.0) == 1.0

    def test_negative_rounds_rejected(self):
        with pytest.raises(ReproError):
            security.geometric_adversary_sum(0.25, rounds=-1)


class TestEq3:
    def test_paper_magnitude(self):
        """Eq. (3) with a 25% adversary: failure ~ 8e-6 (same order)."""
        p_s = security.shard_safety(60, 0.25)
        failure = security.merging_failure_probability(0.25, p_s)
        assert 1e-6 < failure < 1e-4

    def test_monotone_in_adversary(self):
        p_s = security.shard_safety(60, 0.25)
        weak = security.merging_failure_probability(0.10, p_s)
        strong = security.merging_failure_probability(0.30, p_s)
        assert weak < strong

    def test_perfect_shard_never_fails(self):
        assert security.merging_failure_probability(0.25, 1.0) == 0.0

    def test_invalid_ps_rejected(self):
        with pytest.raises(ReproError):
            security.merging_failure_probability(0.25, 1.5)


class TestEq4:
    def test_pmf_sums_to_one(self):
        total = sum(security.fee_probability(t, 20) for t in range(21))
        assert total == pytest.approx(1.0)

    def test_out_of_range_is_zero(self):
        assert security.fee_probability(-1, 10) == 0.0
        assert security.fee_probability(11, 10) == 0.0

    def test_symmetric_around_half(self):
        assert security.fee_probability(4, 10) == pytest.approx(
            security.fee_probability(6, 10)
        )

    def test_invalid_total_rejected(self):
        with pytest.raises(ReproError):
            security.fee_probability(1, 0)


class TestEq5:
    def test_majority_corruption_decreases_with_validators(self):
        few = security.transaction_corruption_probability(5, 0.25)
        many = security.transaction_corruption_probability(51, 0.25)
        assert many < few

    def test_single_validator(self):
        # One validator: corrupted iff she is malicious (> floor(1/2) = 0).
        assert security.transaction_corruption_probability(1, 0.25) == pytest.approx(
            0.25
        )

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            security.transaction_corruption_probability(0, 0.25)


class TestEq6:
    def test_paper_magnitude(self):
        """Eq. (6) at 25%, 200 fees: ~7e-7 (same order)."""
        value = security.selection_corruption_probability(
            0.25, total_fees=200, total_miners=160
        )
        assert 1e-8 < value < 1e-5

    def test_monotone_in_adversary(self):
        weak = security.selection_corruption_probability(0.10, 200, 160)
        strong = security.selection_corruption_probability(0.30, 200, 160)
        assert weak < strong

    def test_33_percent_resilience(self):
        """The headline: both failure probabilities stay negligible for
        adversaries up to 33%."""
        p_s = security.shard_safety(100, 0.33)
        merging = security.merging_failure_probability(0.33, p_s)
        selection = security.selection_corruption_probability(0.33, 200, 300)
        assert merging < 1e-2
        assert selection < 1e-2


class TestMinimumSafeShardSize:
    def test_returns_size_meeting_target(self):
        size = security.minimum_safe_shard_size(0.25, target_safety=0.999)
        assert security.shard_safety(size, 0.25) >= 0.999

    def test_stronger_adversary_needs_bigger_shards(self):
        weak = security.minimum_safe_shard_size(0.20, 0.999)
        strong = security.minimum_safe_shard_size(0.33, 0.999)
        assert strong > weak

    def test_unreachable_target_raises(self):
        with pytest.raises(ReproError):
            security.minimum_safe_shard_size(0.49, 1.0 - 1e-12, max_size=50)
