"""Tests for repro.core.merging.analysis — exact Sec. V equilibrium math."""

import numpy as np
import pytest

from repro.core.merging.analysis import (
    exact_expected_utilities,
    is_mixed_equilibrium,
    merged_size_distribution,
    pivotal_probability,
    replicator_field,
    success_probability,
    symmetric_mixed_equilibrium,
)
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.errors import MergingError

CONFIG = MergingGameConfig(shard_reward=10.0, lower_bound=10)


def players_of(sizes, cost=2.0):
    return [ShardPlayer(i, s, cost) for i, s in enumerate(sizes, start=1)]


class TestSizeDistribution:
    def test_pmf_sums_to_one(self):
        pmf = merged_size_distribution(players_of([3, 5, 7]), [0.3, 0.6, 0.9])
        assert pmf.sum() == pytest.approx(1.0)

    def test_two_player_exact(self):
        pmf = merged_size_distribution(players_of([2, 3]), [0.5, 0.5])
        assert pmf[0] == pytest.approx(0.25)  # nobody merges
        assert pmf[2] == pytest.approx(0.25)
        assert pmf[3] == pytest.approx(0.25)
        assert pmf[5] == pytest.approx(0.25)

    def test_exclude_removes_player(self):
        pmf = merged_size_distribution(players_of([2, 3]), [1.0, 1.0], exclude=0)
        assert len(pmf) == 4  # only size-3 player remains
        assert pmf[3] == pytest.approx(1.0)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(1)
        players = players_of([2, 4, 6, 3])
        x = [0.2, 0.5, 0.7, 0.9]
        sizes = np.array([p.size for p in players])
        samples = (rng.random((40_000, 4)) < x) @ sizes
        empirical = np.mean(samples >= 10)
        exact = success_probability(players, x, lower_bound=10)
        assert exact == pytest.approx(empirical, abs=0.01)

    def test_validation(self):
        with pytest.raises(MergingError):
            merged_size_distribution(players_of([1]), [0.5, 0.5])
        with pytest.raises(MergingError):
            merged_size_distribution(players_of([1]), [1.5])


class TestPivotal:
    def test_pivotal_when_exactly_needed(self):
        # Other player merges with certainty at size 6; L=10; c_i = 5:
        # S_{-i} = 6 always, so i is pivotal with probability 1.
        players = players_of([5, 6])
        assert pivotal_probability(players, [0.5, 1.0], CONFIG, 0) == pytest.approx(1.0)

    def test_not_pivotal_when_bound_already_met(self):
        players = players_of([5, 12])
        assert pivotal_probability(players, [0.5, 1.0], CONFIG, 0) == pytest.approx(0.0)

    def test_not_pivotal_when_bound_unreachable(self):
        players = players_of([2, 3])
        assert pivotal_probability(players, [0.5, 0.5], CONFIG, 0) == pytest.approx(0.0)


class TestUtilitiesAndField:
    def test_merge_minus_stay_is_pivotal_term(self):
        players = players_of([4, 5, 6], cost=2.0)
        x = [0.4, 0.5, 0.6]
        merge_u, stay_u = exact_expected_utilities(players, x, CONFIG)
        for i in range(3):
            expected = (
                CONFIG.shard_reward * pivotal_probability(players, x, CONFIG, i)
                - players[i].cost
            )
            assert merge_u[i] - stay_u[i] == pytest.approx(expected)

    def test_field_zero_at_corners(self):
        players = players_of([6, 6])
        field = replicator_field(players, [0.0, 1.0], CONFIG)
        assert field == pytest.approx([0.0, 0.0])

    def test_field_sign_matches_advantage(self):
        # Pivotal players are pulled toward merging when G*pivotal > C.
        players = players_of([6, 6], cost=1.0)
        field = replicator_field(players, [0.5, 0.5], CONFIG)
        assert np.all(field > 0)

    def test_field_negative_when_cost_dominates(self):
        players = players_of([2, 3], cost=5.0)  # bound unreachable
        field = replicator_field(players, [0.5, 0.5], CONFIG)
        assert np.all(field < 0)


class TestEquilibria:
    def test_corner_equilibrium_all_stay(self):
        players = players_of([6, 6], cost=2.0)
        # With x=(0,0) nobody is pivotal (S_{-i}=0 < L - c_i? L-c=4 > 0):
        # merging alone gives 6 < 10, so advantage = -C < 0: corner holds.
        assert is_mixed_equilibrium(players, [0.0, 0.0], CONFIG)

    def test_corner_equilibrium_pair_merges(self):
        players = players_of([6, 6], cost=2.0)
        assert is_mixed_equilibrium(players, [1.0, 1.0], CONFIG)

    def test_non_equilibrium_detected(self):
        players = players_of([12, 3], cost=2.0)
        # Player 1 alone satisfies L: she strictly gains by merging.
        assert not is_mixed_equilibrium(players, [0.0, 0.0], CONFIG)

    def test_interior_symmetric_equilibrium_is_indifferent(self):
        config = MergingGameConfig(shard_reward=10.0, lower_bound=10)
        x_star = symmetric_mixed_equilibrium(
            player_count=5, size=4, config=config, cost=3.0
        )
        assert x_star is not None
        players = players_of([4] * 5, cost=3.0)
        assert is_mixed_equilibrium(
            players, [x_star] * 5, config, tolerance=1e-4
        )

    def test_no_interior_root_when_cost_exceeds_reward_reach(self):
        # Cost above the max possible pivotal gain: no interior root.
        config = MergingGameConfig(shard_reward=10.0, lower_bound=10)
        x_star = symmetric_mixed_equilibrium(
            player_count=2, size=2, config=config, cost=9.9
        )
        assert x_star is None

    def test_single_player_has_no_mixed_equilibrium(self):
        assert symmetric_mixed_equilibrium(1, 5, CONFIG, cost=1.0) is None


class TestDynamicsMatchAnalysis:
    def test_converged_dynamics_land_near_an_equilibrium(self):
        """Algorithm 3's output satisfies the Sec. V conditions up to the
        exploration clamp: advantage signs agree with the corner each
        probability collapsed to."""
        from repro.core.merging.algorithm import OneTimeMerge
        from repro.core.merging.analysis import exact_expected_utilities

        config = MergingGameConfig(
            shard_reward=10.0, lower_bound=10, subslots=32, max_slots=300
        )
        players = players_of([6, 6, 6], cost=2.0)
        outcome = OneTimeMerge(config, seed=5).run(players)
        x = np.asarray(outcome.probabilities)
        merge_u, stay_u = exact_expected_utilities(players, list(x), config)
        advantage = merge_u - stay_u
        floor = config.probability_floor
        for xi, adv in zip(x, advantage):
            if xi <= floor + 1e-9:  # collapsed to "stay"
                assert adv < 0.5
            elif xi >= 1 - floor - 1e-9:  # collapsed to "merge"
                assert adv > -0.5
