"""Tests for repro.core.selection.weighted."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection.weighted import (
    WeightedBestReply,
    is_weighted_nash,
    weighted_share,
)
from repro.errors import SelectionError


class TestWeightedShare:
    def test_alone_takes_full_fee(self):
        assert weighted_share(10.0, own_weight=2.0, load_with_self=2.0) == 10.0

    def test_proportional_split(self):
        # Two contenders with weights 1 and 3 on a 12-coin fee.
        assert weighted_share(12.0, 1.0, 4.0) == pytest.approx(3.0)
        assert weighted_share(12.0, 3.0, 4.0) == pytest.approx(9.0)

    def test_validation(self):
        with pytest.raises(SelectionError):
            weighted_share(1.0, 0.0, 1.0)
        with pytest.raises(SelectionError):
            weighted_share(1.0, 2.0, 1.0)


class TestWeightedBestReply:
    def test_converges_to_nash(self):
        outcome = WeightedBestReply().run(
            fees=[5.0, 9.0, 3.0, 7.0], weights=[1.0, 2.0, 4.0]
        )
        assert outcome.converged
        assert is_weighted_nash(outcome)

    def test_equal_weights_match_unweighted_spread(self):
        outcome = WeightedBestReply().run(
            fees=[5.0] * 4, weights=[1.0, 1.0, 1.0, 1.0]
        )
        assert outcome.distinct_transaction_count() == 4

    def test_heavy_miner_takes_the_big_fee(self):
        """A dominant miner claims the dominant fee; light miners yield."""
        outcome = WeightedBestReply().run(
            fees=[100.0, 10.0, 10.0], weights=[10.0, 1.0, 1.0]
        )
        assert is_weighted_nash(outcome)
        assert outcome.choices[0] == 0  # the whale sits on the 100-fee tx

    def test_utilities_positive(self):
        outcome = WeightedBestReply().run(
            fees=[4.0, 9.0, 2.0], weights=[1.0, 3.0, 2.0]
        )
        assert all(u > 0 for u in outcome.utilities())

    def test_initial_choices_respected_and_validated(self):
        dynamics = WeightedBestReply()
        outcome = dynamics.run([1.0, 2.0], [1.0, 1.0], initial_choices=[0, 1])
        assert outcome.converged
        with pytest.raises(SelectionError):
            dynamics.run([1.0], [1.0], initial_choices=[0, 1])
        with pytest.raises(SelectionError):
            dynamics.run([1.0], [1.0], initial_choices=[5])

    def test_input_validation(self):
        dynamics = WeightedBestReply()
        with pytest.raises(SelectionError):
            dynamics.run([], [1.0])
        with pytest.raises(SelectionError):
            dynamics.run([1.0], [])
        with pytest.raises(SelectionError):
            dynamics.run([1.0], [0.0])
        with pytest.raises(SelectionError):
            WeightedBestReply(max_rounds=0)

    @given(
        st.lists(st.floats(min_value=0.5, max_value=50.0), min_size=1, max_size=15),
        st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_always_reaches_nash(self, fees, weights):
        outcome = WeightedBestReply().run(fees, weights)
        assert outcome.converged
        assert is_weighted_nash(outcome)

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_property_equal_game_is_special_case(self, miners):
        """With unit weights the weighted equilibrium satisfies the
        unweighted Eq. (2) Nash condition too."""
        fees = [float(3 + (i * 7) % 11) for i in range(miners + 2)]
        outcome = WeightedBestReply().run(fees, [1.0] * miners)
        from repro.core.selection.congestion_game import is_selection_nash

        profile = [(j,) for j in outcome.choices]
        assert is_selection_nash(np.asarray(fees), profile)
