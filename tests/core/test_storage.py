"""Tests for repro.core.storage."""

import pytest

from repro.core.shard_formation import MAXSHARD_ID, partition_transactions
from repro.core.storage import (
    QueryCostReport,
    classification_query_cost,
    storage_profile,
)
from repro.errors import ShardingError
from repro.workloads.generators import uniform_contract_workload


@pytest.fixture
def partition():
    txs = uniform_contract_workload(total_txs=90, contract_shards=8, seed=1)
    return partition_transactions(txs)


class TestStorageProfile:
    def test_full_replication_equals_total(self, partition):
        layout = {shard: 1 for shard in partition.by_shard}
        report = storage_profile(partition, layout)
        assert report.per_miner_full_replication == 90
        assert report.per_miner_ethereum == 90

    def test_contract_sharding_reduces_per_miner_storage(self, partition):
        """The Sec. VII claim: non-MaxShard miners store only a slice."""
        layout = {shard: 1 for shard in partition.by_shard}
        report = storage_profile(partition, layout)
        assert report.per_miner_contract_sharding < report.per_miner_full_replication
        assert report.reduction_vs_full_replication > 0.5

    def test_maxshard_miners_store_everything(self, partition):
        only_maxshard = {MAXSHARD_ID: 3}
        report = storage_profile(partition, only_maxshard)
        assert report.per_miner_contract_sharding == 90
        assert report.reduction_vs_full_replication == 0.0

    def test_system_storage_accounting(self, partition):
        layout = {shard: 2 for shard in partition.by_shard}
        report = storage_profile(partition, layout)
        sizes = partition.shard_sizes
        expected = 2 * sum(
            90 if shard == MAXSHARD_ID else sizes[shard] for shard in sizes
        )
        assert report.system_contract_sharding == expected

    def test_unknown_shard_rejected(self, partition):
        with pytest.raises(ShardingError):
            storage_profile(partition, {999: 1})

    def test_empty_layout_rejected(self, partition):
        with pytest.raises(ShardingError):
            storage_profile(partition, {})

    def test_more_shards_bigger_savings(self):
        """Finer sharding shrinks the average slice per miner."""
        layouts = {}
        for contracts in (2, 8):
            txs = uniform_contract_workload(90, contracts, seed=2)
            partition = partition_transactions(txs)
            layout = {shard: 1 for shard in partition.by_shard}
            layouts[contracts] = storage_profile(partition, layout)
        assert (
            layouts[8].per_miner_contract_sharding
            < layouts[2].per_miner_contract_sharding
        )


class TestQueryCost:
    def test_callgraph_is_cheaper(self):
        report = classification_query_cost(history_length=10_000, sender_degree=3)
        assert report.callgraph_operations == 3
        assert report.speedup > 1_000

    def test_degree_zero_costs_one(self):
        report = classification_query_cost(history_length=100, sender_degree=0)
        assert report.callgraph_operations == 1

    def test_negative_inputs_rejected(self):
        with pytest.raises(ShardingError):
            classification_query_cost(-1, 0)
        with pytest.raises(ShardingError):
            classification_query_cost(1, -1)

    def test_speedup_grows_with_history(self):
        short = classification_query_cost(1_000, 2)
        long = classification_query_cost(1_000_000, 2)
        assert long.speedup > short.speedup
