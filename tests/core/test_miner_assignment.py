"""Tests for repro.core.miner_assignment (Sec. III-B)."""

import pytest

from repro.consensus.miner import MinerIdentity
from repro.core.miner_assignment import (
    assign_miners,
    draw_shard,
    verify_membership,
)
from repro.errors import ShardAssignmentError


FRACTIONS = {0: 30.0, 1: 40.0, 2: 30.0}


def make_miners(n):
    return [MinerIdentity.create(f"assign-{i}") for i in range(n)]


class TestDrawShard:
    def test_deterministic(self):
        assert draw_shard("pk", "rand", FRACTIONS) == draw_shard(
            "pk", "rand", FRACTIONS
        )

    def test_lands_in_known_shard(self):
        for i in range(100):
            assert draw_shard(f"pk{i}", "rand", FRACTIONS) in FRACTIONS

    def test_proportionality(self):
        """Miner counts track transaction fractions (the paper's revision
        of Omniledger: MaxShard gets more miners when it has more txs)."""
        fractions = {0: 80.0, 1: 20.0}
        draws = [draw_shard(f"pk{i}", "rand", fractions) for i in range(3_000)]
        share_of_zero = draws.count(0) / len(draws)
        assert 0.75 < share_of_zero < 0.85

    def test_unnormalized_fractions_accepted(self):
        fractions = {0: 3.0, 1: 1.0}  # sums to 4, not 100
        draws = [draw_shard(f"pk{i}", "r", fractions) for i in range(2_000)]
        assert 0.70 < draws.count(0) / len(draws) < 0.80

    def test_zero_total_rejected(self):
        with pytest.raises(ShardAssignmentError):
            draw_shard("pk", "rand", {0: 0.0, 1: 0.0})

    def test_randomness_shuffles_assignment(self):
        a = [draw_shard(f"pk{i}", "ra", FRACTIONS) for i in range(50)]
        b = [draw_shard(f"pk{i}", "rb", FRACTIONS) for i in range(50)]
        assert a != b


class TestVerifyMembership:
    def test_honest_claim_verifies(self):
        shard = draw_shard("pk", "rand", FRACTIONS)
        assert verify_membership("pk", shard, "rand", FRACTIONS)

    def test_false_claim_fails(self):
        shard = draw_shard("pk", "rand", FRACTIONS)
        wrong = (shard + 1) % len(FRACTIONS)
        assert not verify_membership("pk", wrong, "rand", FRACTIONS)

    def test_bad_fractions_fail_closed(self):
        assert not verify_membership("pk", 0, "rand", {0: 0.0})


class TestAssignMiners:
    def test_every_miner_assigned(self):
        miners = make_miners(20)
        assignment = assign_miners(miners, FRACTIONS, epoch_seed="e1")
        assert set(assignment.shard_of) == {m.public for m in miners}

    def test_leader_is_a_member(self):
        miners = make_miners(10)
        assignment = assign_miners(miners, FRACTIONS, epoch_seed="e1")
        assert assignment.leader_public in {m.public for m in miners}

    def test_assignment_replayable(self):
        miners = make_miners(10)
        a = assign_miners(miners, FRACTIONS, epoch_seed="e1")
        b = assign_miners(miners, FRACTIONS, epoch_seed="e1")
        assert a.shard_of == b.shard_of
        assert a.randomness == b.randomness

    def test_epochs_reshuffle(self):
        miners = make_miners(30)
        a = assign_miners(miners, FRACTIONS, epoch_seed="e1")
        b = assign_miners(miners, FRACTIONS, epoch_seed="e2")
        assert a.shard_of != b.shard_of

    def test_verifier_closure(self):
        miners = make_miners(10)
        assignment = assign_miners(miners, FRACTIONS, epoch_seed="e1")
        verify = assignment.verifier()
        public = miners[0].public
        true_shard = assignment.shard_of[public]
        assert verify(public, true_shard)
        assert not verify(public, true_shard + 1)

    def test_members_of(self):
        miners = make_miners(30)
        assignment = assign_miners(miners, FRACTIONS, epoch_seed="e1")
        total = sum(len(assignment.members_of(s)) for s in FRACTIONS)
        assert total == 30

    def test_shard_sizes(self):
        miners = make_miners(30)
        assignment = assign_miners(miners, FRACTIONS, epoch_seed="e1")
        sizes = assignment.shard_sizes()
        assert sum(sizes.values()) == 30

    def test_explicit_randomness_respected(self):
        miners = make_miners(5)
        assignment = assign_miners(
            miners, FRACTIONS, epoch_seed="e1", randomness="beacon-value"
        )
        assert assignment.randomness == "beacon-value"

    def test_empty_inputs_rejected(self):
        with pytest.raises(ShardAssignmentError):
            assign_miners([], FRACTIONS, epoch_seed="e")
        with pytest.raises(ShardAssignmentError):
            assign_miners(make_miners(1), {}, epoch_seed="e")

    def test_malicious_concentration_impossible(self):
        """A miner cannot pick her shard: the draw is fixed by public
        data, so claiming any other shard is detectable by everyone."""
        miners = make_miners(50)
        assignment = assign_miners(miners, FRACTIONS, epoch_seed="e1")
        verify = assignment.verifier()
        for miner in miners:
            true_shard = assignment.shard_of[miner.public]
            for shard in FRACTIONS:
                if shard != true_shard:
                    assert not verify(miner.public, shard)
