"""Tests for repro.core.merging.equilibrium."""

import pytest

from repro.core.merging.equilibrium import (
    best_pure_deviation,
    enumerate_pure_nash,
    expected_payoffs,
    is_pure_nash,
)
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.errors import MergingError

CONFIG = MergingGameConfig(shard_reward=10.0, lower_bound=10)


def players_of(sizes, cost=2.0):
    return [ShardPlayer(i, s, cost) for i, s in enumerate(sizes, start=1)]


class TestExpectedPayoffs:
    def test_satisfied_profile(self):
        players = players_of([6, 6, 6])
        payoffs = expected_payoffs(players, [True, True, False], CONFIG)
        assert payoffs == [8.0, 8.0, 10.0]  # mergers pay C, stayer free-rides

    def test_unsatisfied_profile(self):
        players = players_of([3, 3, 3])
        payoffs = expected_payoffs(players, [True, True, False], CONFIG)
        assert payoffs == [-2.0, -2.0, 0.0]

    def test_nobody_merges(self):
        players = players_of([20, 20])
        payoffs = expected_payoffs(players, [False, False], CONFIG)
        assert payoffs == [0.0, 0.0]  # Eq. (9): m = 0 pays nothing

    def test_profile_length_checked(self):
        with pytest.raises(MergingError):
            expected_payoffs(players_of([5]), [True, False], CONFIG)


class TestNashPredicates:
    def test_pivotal_coalition_is_nash(self):
        """Two size-6 players merging (12 >= 10, each pivotal) is stable:
        neither merger can leave without losing G, and the stayer
        free-rides."""
        players = players_of([6, 6, 3])
        assert is_pure_nash(players, [True, True, False], CONFIG)

    def test_oversubscribed_profile_is_not_nash(self):
        """If the merged set satisfies (1) even without one member, that
        member prefers to stay and free-ride."""
        players = players_of([6, 6, 6])
        profile = [True, True, True]  # 18 >= 10 without any single member
        assert not is_pure_nash(players, profile, CONFIG)
        deviator, gain = best_pure_deviation(players, profile, CONFIG)
        assert gain == pytest.approx(2.0)  # saves her cost C

    def test_doomed_merging_is_not_nash(self):
        """Merging while the bound is unreachable burns C for nothing."""
        players = players_of([3, 3])
        assert not is_pure_nash(players, [True, True], CONFIG)

    def test_all_staying_is_nash_when_no_single_player_suffices(self):
        """With everyone staying, a unilateral merger cannot reach L
        alone, so she would pay C for nothing: all-stay is an equilibrium
        (the bad one the shard reward is designed to escape via mixing)."""
        players = players_of([6, 6])
        assert is_pure_nash(players, [False, False], CONFIG)

    def test_lone_sufficient_merger_breaks_all_stay(self):
        """A single player holding >= L transactions gains by merging."""
        players = players_of([12, 3])
        assert not is_pure_nash(players, [False, False], CONFIG)


class TestEnumeration:
    def test_enumerates_known_equilibria(self):
        players = players_of([6, 6])
        equilibria = enumerate_pure_nash(players, CONFIG)
        assert [True, True] in equilibria
        assert [False, False] in equilibria
        assert [True, False] not in equilibria

    def test_guard_on_large_games(self):
        with pytest.raises(MergingError):
            enumerate_pure_nash(players_of([1] * 17), CONFIG)

    def test_every_enumerated_profile_verifies(self):
        players = players_of([4, 7, 5, 6])
        for profile in enumerate_pure_nash(players, CONFIG):
            assert is_pure_nash(players, profile, CONFIG)
