"""Tests for repro.core.merging.game — Eq. (8)-(14) primitives."""

import pytest

from repro.core.merging.game import (
    MergingGameConfig,
    PayoffSamples,
    ShardPlayer,
    constraint_satisfied,
    merge_utility,
    realized_utility,
    replicator_update,
    stay_utility,
)
from repro.errors import MergingError


class TestShardPlayer:
    def test_valid(self):
        player = ShardPlayer(shard_id=1, size=5, cost=2.0)
        assert player.size == 5

    def test_negative_size_rejected(self):
        with pytest.raises(MergingError):
            ShardPlayer(shard_id=1, size=-1, cost=1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(MergingError):
            ShardPlayer(shard_id=1, size=1, cost=-1.0)


class TestConfig:
    def test_defaults_valid(self):
        MergingGameConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shard_reward": 0.0},
            {"lower_bound": 0},
            {"step_size": 0.0},
            {"step_size": 1.5},
            {"subslots": 0},
            {"max_slots": 0},
            {"probability_floor": 0.0},
            {"probability_floor": 0.6},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(MergingError):
            MergingGameConfig(**kwargs)


class TestUtilities:
    """The Eq. (14) table."""

    def test_merge_satisfied(self):
        assert merge_utility(True, shard_reward=10.0, cost=3.0) == 7.0

    def test_merge_unsatisfied(self):
        assert merge_utility(False, shard_reward=10.0, cost=3.0) == -3.0

    def test_stay_satisfied(self):
        assert stay_utility(True, shard_reward=10.0) == 10.0

    def test_stay_unsatisfied(self):
        assert stay_utility(False, shard_reward=10.0) == 0.0

    def test_realized_utility_matches_table(self):
        G, C = 10.0, 3.0
        assert realized_utility(True, True, G, C) == G - C
        assert realized_utility(True, False, G, C) == -C
        assert realized_utility(False, True, G, C) == G
        assert realized_utility(False, False, G, C) == 0.0

    def test_free_riding_dominates_when_satisfied(self):
        """The core tension: staying pays more than merging whenever the
        constraint is satisfied anyway — the reason a mixed equilibrium
        exists at all."""
        assert stay_utility(True, 10.0) > merge_utility(True, 10.0, 2.0)

    def test_constraint(self):
        assert constraint_satisfied(10, 10)
        assert not constraint_satisfied(9, 10)


class TestPayoffSamples:
    def test_eq12_merge_average(self):
        samples = PayoffSamples()
        samples.record(merged=True, payoff=8.0)
        samples.record(merged=False, payoff=10.0)
        samples.record(merged=True, payoff=6.0)
        assert samples.average_merge_payoff(fallback=0.0) == 7.0

    def test_eq12_fallback_without_merges(self):
        samples = PayoffSamples()
        samples.record(merged=False, payoff=10.0)
        assert samples.average_merge_payoff(fallback=3.5) == 3.5

    def test_eq13_overall_average(self):
        samples = PayoffSamples()
        samples.record(merged=True, payoff=8.0)
        samples.record(merged=False, payoff=10.0)
        assert samples.average_payoff() == 9.0

    def test_eq13_empty(self):
        assert PayoffSamples().average_payoff() == 0.0


class TestReplicatorUpdate:
    def test_positive_advantage_grows_probability(self):
        updated = replicator_update(0.5, 8.0, 5.0, step_size=0.1, floor=0.01)
        assert updated > 0.5

    def test_negative_advantage_shrinks_probability(self):
        updated = replicator_update(0.5, 2.0, 5.0, step_size=0.1, floor=0.01)
        assert updated < 0.5

    def test_indifference_is_fixed_point(self):
        assert replicator_update(0.4, 5.0, 5.0, 0.1, 0.01) == pytest.approx(0.4)

    def test_clamped_to_floor_and_ceiling(self):
        low = replicator_update(0.05, -100.0, 100.0, 1.0, floor=0.02)
        high = replicator_update(0.95, 100.0, -100.0, 1.0, floor=0.02)
        assert low == 0.02
        assert high == 0.98

    def test_update_magnitude_scales_with_step(self):
        small = replicator_update(0.5, 8.0, 5.0, 0.01, 0.001)
        large = replicator_update(0.5, 8.0, 5.0, 0.5, 0.001)
        assert abs(large - 0.5) > abs(small - 0.5)
