"""Tests for repro.core.selection — the congestion game and Algorithm 2."""

import numpy as np
import pytest

from repro.core.selection.best_reply import (
    BestReplyDynamics,
    greedy_profile,
)
from repro.core.selection.congestion_game import (
    SelectionGameConfig,
    is_selection_nash,
    payoff,
    profile_utilities,
    rosenthal_potential,
    selection_counts,
)
from repro.errors import SelectionError


class TestPayoff:
    def test_eq2_alone(self):
        """The motivating example: a lone miner expects the full fee."""
        assert payoff(fee=10.0, competitors=0) == 10.0

    def test_eq2_contested(self):
        assert payoff(fee=10.0, competitors=4) == 2.0

    def test_negative_competitors_rejected(self):
        with pytest.raises(SelectionError):
            payoff(1.0, -1)


class TestPotential:
    def test_empty_profile(self):
        assert rosenthal_potential(np.array([1.0, 2.0]), np.array([0, 0])) == 0.0

    def test_harmonic_sum(self):
        # One tx with fee 6 chosen by 3 miners: 6 * (1 + 1/2 + 1/3) = 11.
        phi = rosenthal_potential(np.array([6.0]), np.array([3]))
        assert phi == pytest.approx(11.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SelectionError):
            rosenthal_potential(np.array([1.0]), np.array([1, 2]))

    def test_improving_move_raises_potential(self):
        """The Rosenthal property: a strictly improving unilateral swap
        strictly increases the potential by the same amount."""
        fees = np.array([10.0, 6.0])
        before = [(0,), (0,)]  # both on the high-fee tx
        after = [(0,), (1,)]  # second miner moves to the free one
        u_before = profile_utilities(fees, before)[1]
        u_after = profile_utilities(fees, after)[1]
        phi_before = rosenthal_potential(fees, selection_counts(2, before))
        phi_after = rosenthal_potential(fees, selection_counts(2, after))
        assert u_after > u_before
        assert phi_after - phi_before == pytest.approx(u_after - u_before)


class TestGreedyProfile:
    def test_everyone_identical(self):
        profile = greedy_profile([1.0, 9.0, 5.0], miners=4, capacity=2)
        assert len(set(profile)) == 1  # the Sec. II-B pathology
        assert profile[0] == (1, 2)  # indices of fees 9 and 5

    def test_capacity_larger_than_pool(self):
        profile = greedy_profile([3.0, 1.0], miners=2, capacity=10)
        assert profile[0] == (0, 1)


class TestBestReplyDynamics:
    def test_converges(self):
        dynamics = BestReplyDynamics(SelectionGameConfig(capacity=1), seed=1)
        outcome = dynamics.run([5.0, 3.0, 8.0, 1.0], miners=4)
        assert outcome.converged

    def test_reaches_nash(self):
        dynamics = BestReplyDynamics(SelectionGameConfig(capacity=1), seed=2)
        outcome = dynamics.run([5.0, 3.0, 8.0, 1.0, 7.0, 2.0], miners=5)
        assert is_selection_nash(np.asarray(outcome.fees), list(outcome.profile))

    def test_reaches_nash_with_sets(self):
        dynamics = BestReplyDynamics(SelectionGameConfig(capacity=3), seed=3)
        fees = [float(f) for f in (5, 3, 8, 1, 7, 2, 9, 4, 6, 10)]
        outcome = dynamics.run(fees, miners=4)
        assert outcome.converged
        assert is_selection_nash(np.asarray(outcome.fees), list(outcome.profile))

    def test_miners_spread_over_equal_fees(self):
        dynamics = BestReplyDynamics(SelectionGameConfig(capacity=1), seed=4)
        outcome = dynamics.run([5.0] * 6, miners=6)
        assert outcome.distinct_set_count() == 6

    def test_single_dominant_fee_attracts_everyone(self):
        """The paper's worst case (Sec. VI-E2): one transaction worth more
        than everything else even when fully contested."""
        fees = [100.0, 1.0, 1.0, 1.0]
        outcome = BestReplyDynamics(SelectionGameConfig(capacity=1), seed=5).run(
            fees, miners=4
        )
        assert outcome.distinct_set_count() == 1
        assert all(chosen == (0,) for chosen in outcome.profile)

    def test_greedy_start_disperses(self):
        """Starting from the duplicated greedy profile, best replies pull
        miners apart — the mechanism that de-serializes the shard."""
        fees = [9.0, 8.0, 7.0, 6.0]
        initial = greedy_profile(fees, miners=4, capacity=1)
        outcome = BestReplyDynamics(SelectionGameConfig(capacity=1), seed=6).run(
            fees, miners=4, initial_profile=initial
        )
        assert outcome.distinct_set_count() > 1

    def test_deterministic_under_seed(self):
        config = SelectionGameConfig(capacity=2)
        a = BestReplyDynamics(config, seed=7).run([3.0, 1.0, 4.0, 1.0, 5.0], 3)
        b = BestReplyDynamics(config, seed=7).run([3.0, 1.0, 4.0, 1.0, 5.0], 3)
        assert a.profile == b.profile

    def test_utilities_positive_at_equilibrium(self):
        outcome = BestReplyDynamics(SelectionGameConfig(capacity=1), seed=8).run(
            [4.0, 9.0, 2.0], miners=3
        )
        assert all(u > 0 for u in outcome.utilities())

    def test_invalid_inputs(self):
        dynamics = BestReplyDynamics(SelectionGameConfig(), seed=9)
        with pytest.raises(SelectionError):
            dynamics.run([], miners=3)
        with pytest.raises(SelectionError):
            dynamics.run([1.0], miners=0)
        with pytest.raises(SelectionError):
            dynamics.run([-1.0], miners=1)

    def test_initial_profile_validation(self):
        dynamics = BestReplyDynamics(SelectionGameConfig(capacity=1), seed=10)
        with pytest.raises(SelectionError):
            dynamics.run([1.0, 2.0], miners=2, initial_profile=[(0,)])
        with pytest.raises(SelectionError):
            dynamics.run([1.0, 2.0], miners=1, initial_profile=[(5,)])

    def test_counts_match_profile(self):
        outcome = BestReplyDynamics(SelectionGameConfig(capacity=2), seed=11).run(
            [3.0, 1.0, 4.0], miners=3
        )
        counts = outcome.counts()
        assert counts.sum() == sum(len(chosen) for chosen in outcome.profile)

    def test_complexity_moves_bounded(self):
        """The paper cites O(u * T^2) for best reply; the move count in
        practice is far below u * T."""
        fees = [float((i * 37) % 97 + 1) for i in range(50)]
        outcome = BestReplyDynamics(SelectionGameConfig(capacity=1), seed=12).run(
            fees, miners=50
        )
        assert outcome.converged
        assert outcome.moves <= 50 * 50
