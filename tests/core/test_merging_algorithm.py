"""Tests for repro.core.merging.algorithm — Algorithms 1 and 3."""

import pytest

from repro.core.merging.algorithm import IterativeMerging, OneTimeMerge
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.errors import MergingError


CONFIG = MergingGameConfig(shard_reward=10.0, lower_bound=10, subslots=16)


def players_of(sizes, cost=2.0):
    return [
        ShardPlayer(shard_id=i, size=size, cost=cost)
        for i, size in enumerate(sizes, start=1)
    ]


class TestOneTimeMerge:
    def test_needs_players(self):
        with pytest.raises(MergingError):
            OneTimeMerge(CONFIG, seed=1).run([])

    def test_cost_must_be_below_reward(self):
        with pytest.raises(MergingError, match="shard reward"):
            OneTimeMerge(CONFIG, seed=1).run(players_of([5, 5], cost=20.0))

    def test_forms_satisfying_shard_when_possible(self):
        outcome = OneTimeMerge(CONFIG, seed=1).run(players_of([5, 5, 5, 5]))
        assert outcome.satisfied
        assert outcome.merged_size >= CONFIG.lower_bound

    def test_impossible_constraint_reported_honestly(self):
        outcome = OneTimeMerge(CONFIG, seed=1).run(players_of([2, 3]))
        assert not outcome.satisfied
        assert outcome.merged_size < CONFIG.lower_bound

    def test_probabilities_stay_in_bounds(self):
        outcome = OneTimeMerge(CONFIG, seed=2).run(players_of([5] * 6))
        floor = CONFIG.probability_floor
        assert all(floor <= p <= 1.0 - floor for p in outcome.probabilities)

    def test_deterministic_under_seed(self):
        a = OneTimeMerge(CONFIG, seed=7).run(players_of([5] * 6))
        b = OneTimeMerge(CONFIG, seed=7).run(players_of([5] * 6))
        assert a.merged_shards == b.merged_shards
        assert a.probabilities == b.probabilities

    def test_initial_probabilities_respected(self):
        players = players_of([5] * 4)
        outcome = OneTimeMerge(CONFIG, seed=3).run(
            players, initial_probabilities=[0.9, 0.9, 0.1, 0.1]
        )
        assert outcome.satisfied

    def test_initial_probabilities_length_checked(self):
        with pytest.raises(MergingError):
            OneTimeMerge(CONFIG, seed=3).run(
                players_of([5, 5]), initial_probabilities=[0.5]
            )

    def test_staying_shards_partition(self):
        players = players_of([5] * 5)
        outcome = OneTimeMerge(CONFIG, seed=4).run(players)
        all_ids = {p.shard_id for p in players}
        assert set(outcome.merged_shards) | set(outcome.staying_shards) == all_ids
        assert set(outcome.merged_shards) & set(outcome.staying_shards) == set()

    def test_converges_within_budget(self):
        outcome = OneTimeMerge(CONFIG, seed=5).run(players_of([4, 6, 3, 7, 5]))
        assert outcome.converged
        assert outcome.slots_used <= CONFIG.max_slots

    def test_single_big_player_unsatisfiable_alone(self):
        # A single player of size >= L "merging with herself" still counts
        # as reaching the bound if she merges; the realization must not
        # invent other players.
        outcome = OneTimeMerge(CONFIG, seed=6).run(players_of([12]))
        assert set(outcome.merged_shards) <= {1}


class TestIterativeMerging:
    def test_produces_multiple_shards(self):
        result = IterativeMerging(CONFIG, seed=1).run(players_of([5] * 8))
        assert result.new_shard_count >= 2
        assert all(o.merged_size >= CONFIG.lower_bound for o in result.new_shards)

    def test_merged_players_disjoint_across_rounds(self):
        result = IterativeMerging(CONFIG, seed=2).run(players_of([5] * 8))
        seen = set()
        for outcome in result.new_shards:
            assert not (set(outcome.merged_shards) & seen)
            seen |= set(outcome.merged_shards)

    def test_leftovers_cannot_form_viable_shard(self):
        result = IterativeMerging(CONFIG, seed=3).run(players_of([5] * 7))
        leftover_total = sum(p.size for p in result.leftover_players)
        assert (
            leftover_total < CONFIG.lower_bound
            or len(result.leftover_players) < 2
            or result.rounds > 0
        )

    def test_empty_population(self):
        result = IterativeMerging(CONFIG, seed=4).run([])
        assert result.new_shard_count == 0
        assert result.leftover_players == ()

    def test_single_player_never_merges(self):
        result = IterativeMerging(CONFIG, seed=5).run(players_of([50]))
        assert result.new_shard_count == 0
        assert len(result.leftover_players) == 1

    def test_total_size_conserved(self):
        players = players_of([3, 7, 5, 9, 2, 6])
        result = IterativeMerging(CONFIG, seed=6).run(players)
        merged_total = sum(o.merged_size for o in result.new_shards)
        leftover_total = sum(p.size for p in result.leftover_players)
        assert merged_total + leftover_total == sum(p.size for p in players)

    def test_deterministic_under_seed(self):
        a = IterativeMerging(CONFIG, seed=7).run(players_of([5] * 10))
        b = IterativeMerging(CONFIG, seed=7).run(players_of([5] * 10))
        assert a.new_shard_sizes() == b.new_shard_sizes()

    def test_complexity_bound_on_rounds(self):
        """Algorithm 1 runs Algorithm 3 at most S/2 times... in practice
        far fewer; assert the hard upper bound from the paper."""
        players = players_of([5] * 20)
        result = IterativeMerging(CONFIG, seed=8).run(players)
        assert result.rounds <= len(players) // 2 + 1

    def test_near_optimal_at_scale(self):
        """The Fig. 5(a) headline: within ~70-100% of optimal."""
        import random

        rng = random.Random(42)
        sizes = [rng.randint(1, 9) for __ in range(200)]
        config = MergingGameConfig(
            shard_reward=10.0, lower_bound=50, subslots=16, max_slots=200
        )
        result = IterativeMerging(config, seed=9).run(players_of(sizes))
        optimal = sum(sizes) // config.lower_bound
        assert result.new_shard_count >= int(0.6 * optimal)
        assert result.new_shard_count <= optimal
