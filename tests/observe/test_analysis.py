"""Trace analytics: profiles, causal lineage, and the trace diff."""

import json

import pytest

from repro.errors import SimulationError
from repro.observe import (
    Tracer,
    as_payloads,
    build_lineages,
    build_phase_profiles,
    diff_traces,
    read_jsonl,
    render_diff,
    render_profile,
    shard_latency_histograms,
)


def _payload(seq, name, **extra):
    payload = {"seq": seq, "name": name}
    payload.update(extra)
    return payload


def lineage_trace():
    """A small synthetic trace with a full and a pending lifecycle."""
    return [
        _payload(0, "workload.inject", time=0.0, phase="inject",
                 attrs={"txs": 3}),
        _payload(1, "tx.seen", time=0.5, phase="gossip", shard=1,
                 actor="m0", attrs={"tx": 0}),
        _payload(2, "tx.seen", time=0.7, phase="gossip", shard=2,
                 actor="m1", attrs={"tx": 1}),
        _payload(3, "block.forged", time=10.0, phase="mine", shard=1,
                 actor="m0", attrs={"height": 1, "txs": 1, "empty": False,
                                    "tx_idx": [0]}),
        _payload(4, "tx.confirmed", time=10.0, phase="confirm", shard=1,
                 attrs={"tx": 0}),
        _payload(5, "run.complete", time=20.0, phase="result",
                 attrs={"confirmed": 1},
                 wall={"engine": "fast"}),
    ]


class TestLineage:
    def test_full_lifecycle_reconstructed(self):
        lineages = build_lineages(lineage_trace())
        entry = lineages[0]
        assert entry.injected_at == 0.0
        assert entry.seen_at == 0.5
        assert entry.seen_shard == 1 and entry.seen_by == "m0"
        assert entry.included_at == 10.0 and entry.included_height == 1
        assert entry.confirmed_at == 10.0 and entry.confirmed_shard == 1
        assert entry.confirmed and entry.latency == 10.0
        assert entry.phase_times() == {
            "gossip": 0.5, "queue": 9.5, "confirm": 0.0,
        }

    def test_never_confirmed_transactions_stay_pending(self):
        lineages = build_lineages(lineage_trace())
        # tx 1 was seen but never included/confirmed; tx 2 only injected.
        assert len(lineages) == 3
        assert not lineages[1].confirmed
        assert lineages[1].seen_at == 0.7
        assert lineages[1].latency is None
        assert lineages[2].seen_at is None
        assert lineages[2].injected_at == 0.0
        assert lineages[2].phase_times() == {}

    def test_first_inclusion_wins_for_competing_blocks(self):
        trace = lineage_trace()
        trace.insert(4, _payload(9, "block.forged", time=12.0, phase="mine",
                                 shard=1, actor="m2",
                                 attrs={"height": 1, "tx_idx": [0]}))
        lineages = build_lineages(trace)
        assert lineages[0].included_at == 10.0
        assert lineages[0].included_by == "m0"

    def test_shard_latency_histograms_group_by_confirming_shard(self):
        hists = shard_latency_histograms(build_lineages(lineage_trace()))
        assert sorted(hists) == [1]
        assert hists[1].samples == [10.0]
        assert hists[1].percentile(99.0) == 10.0

    def test_empty_trace_has_no_lineages(self):
        assert build_lineages([]) == {}


class TestPhaseProfile:
    def test_per_phase_attribution(self):
        profiles = {p.phase: p for p in build_phase_profiles(lineage_trace())}
        assert profiles["gossip"].records == 2
        assert profiles["gossip"].sim_start == 0.5
        assert profiles["gossip"].sim_end == 0.7
        assert profiles["gossip"].sim_span == pytest.approx(0.2)
        assert profiles["result"].records == 1

    def test_wall_durations_summed_separately(self):
        payloads = [
            _payload(0, "a.end", phase="p", wall={"duration_s": 0.25}),
            _payload(1, "b.end", phase="p", wall={"duration_s": 0.5}),
            _payload(2, "c", phase="p"),
        ]
        profile = build_phase_profiles(payloads)[0]
        assert profile.wall_s == pytest.approx(0.75)
        assert profile.records == 3
        assert profile.sim_span == 0.0  # untimed records

    def test_render_profile_reports_latencies_and_pendings(self):
        text = render_profile(lineage_trace(), title="t")
        assert "3 tracked, 1 confirmed, 2 never confirmed" in text
        assert "p50" in text and "p99" in text
        assert "never confirmed: tx [1, 2]" in text

    def test_render_profile_empty_trace(self):
        assert "(empty trace)" in render_profile([], title="t")

    def test_render_profile_without_lineage_events(self):
        payloads = [_payload(0, "block.forged", phase="mine",
                             attrs={"height": 1})]
        assert "no lineage events" in render_profile(payloads)


class TestTraceDiff:
    def test_identical_traces_do_not_diverge(self):
        diff = diff_traces(lineage_trace(), lineage_trace())
        assert not diff.divergent
        assert diff.wall_only == 0
        text = render_diff(diff, lineage_trace(), lineage_trace())
        assert "no deterministic divergence" in text

    def test_wall_only_differences_are_not_divergence(self):
        left = lineage_trace()
        right = lineage_trace()
        right[-1] = dict(right[-1], wall={"engine": "legacy"})
        diff = diff_traces(left, right)
        assert not diff.divergent
        assert diff.wall_only == 1
        text = render_diff(diff, left, right)
        assert "no deterministic divergence" in text
        assert "wall-clock sidecars" in text

    def test_perturbed_attr_pinpoints_record_and_field(self):
        left = lineage_trace()
        right = lineage_trace()
        right[3] = dict(right[3], attrs={"height": 2, "txs": 1,
                                         "empty": False, "tx_idx": [0]})
        diff = diff_traces(left, right)
        assert diff.divergent
        assert diff.index == 3
        assert diff.fields == ["attrs"]
        text = render_diff(diff, left, right, names=("a", "b"), window=1)
        assert "first deterministic divergence at record 3" in text
        assert ">> [3]" in text

    def test_time_perturbation_names_the_field(self):
        left = lineage_trace()
        right = lineage_trace()
        right[1] = dict(right[1], time=0.6)
        diff = diff_traces(left, right)
        assert diff.index == 1
        assert diff.fields == ["time"]

    def test_truncated_trace_diverges_at_missing_record(self):
        left = lineage_trace()
        right = lineage_trace()[:-2]
        diff = diff_traces(left, right)
        assert diff.divergent
        assert diff.index == len(right)
        assert diff.fields == ["<missing record>"]
        assert "<absent>" in render_diff(diff, left, right)

    def test_two_empty_traces_do_not_diverge(self):
        diff = diff_traces([], [])
        assert not diff.divergent


class TestPayloadSources:
    def test_as_payloads_accepts_tracer_and_dicts(self):
        tracer = Tracer()
        tracer.event("a", phase="p", k=1)
        tracer.event("b", wall={"duration_s": 0.1})
        payloads = as_payloads(tracer)
        assert payloads[0]["name"] == "a"
        assert payloads[1]["wall"] == {"duration_s": 0.1}
        assert as_payloads(payloads) is payloads or as_payloads(payloads) == payloads

    def test_as_payloads_reads_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.event("a", phase="p")
        path = tracer.write_jsonl(tmp_path / "t.jsonl")
        payloads = as_payloads(path)
        assert payloads[0]["name"] == "a"

    def test_corrupt_jsonl_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"seq": 0, "name": "a"})
            + "\n{\"seq\": 1, \"name\":\n"
        )
        with pytest.raises(SimulationError, match="line 2"):
            read_jsonl(path)

    def test_non_object_jsonl_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 0, "name": "a"}\n[1, 2]\n')
        with pytest.raises(SimulationError, match="line 2"):
            read_jsonl(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n{"seq": 0, "name": "a"}\n\n')
        assert len(read_jsonl(path)) == 1
