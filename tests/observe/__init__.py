"""Tests for the repro.observe tracing/metrics subsystem."""
