"""Tests for repro.observe.tracer and the export helpers."""

import json

import pytest

from repro.errors import ConfigError
from repro.observe import (
    TRACE_ENV,
    TraceRecord,
    Tracer,
    digest_of_jsonl,
    get_tracer,
    read_jsonl,
    render_trace_summary,
    resolve_tracer,
    set_tracer,
    trace_digest,
    tracing_enabled,
    use_tracer,
)


@pytest.fixture(autouse=True)
def _clean_tracer_state(monkeypatch):
    """Tests here poke the process-wide active tracer; isolate them."""
    import repro.observe.tracer as tracer_mod

    monkeypatch.delenv(TRACE_ENV, raising=False)
    monkeypatch.setattr(tracer_mod, "_ACTIVE", None)
    monkeypatch.setattr(tracer_mod, "_ENV_DEFAULT", None)


class TestTraceRecord:
    def test_identity_excludes_wall_and_none_fields(self):
        record = TraceRecord(
            seq=3,
            name="block.forged",
            time=1.25,
            shard=2,
            attrs={"txs": 5},
            wall={"duration_s": 0.01},
        )
        identity = record.identity()
        assert identity == {
            "seq": 3,
            "name": "block.forged",
            "time": 1.25,
            "shard": 2,
            "attrs": {"txs": 5},
        }
        assert "wall" not in identity
        assert "phase" not in identity

    def test_to_json_is_canonical(self):
        record = TraceRecord(seq=0, name="e", attrs={"b": 1, "a": 2})
        parsed = json.loads(record.to_json())
        assert parsed == {"seq": 0, "name": "e", "attrs": {"b": 1, "a": 2}}
        # sorted keys, compact separators
        assert record.to_json().startswith('{"attrs":{"a":2,"b":1}')

    def test_to_json_can_drop_wall(self):
        record = TraceRecord(seq=0, name="e", wall={"duration_s": 0.5})
        assert "wall" in record.to_json()
        assert "wall" not in record.to_json(include_wall=False)


class TestTracer:
    def test_event_assigns_sequence_numbers(self):
        tracer = Tracer()
        first = tracer.event("a")
        second = tracer.event("b", shard=1)
        assert (first.seq, second.seq) == (0, 1)
        assert len(tracer) == 2

    def test_clock_supplies_default_time(self):
        tracer = Tracer(clock=lambda: 7.5)
        assert tracer.event("a").time == 7.5
        assert tracer.event("b", time=1.0).time == 1.0  # explicit wins
        tracer.set_clock(None)
        assert tracer.event("c").time is None

    def test_count_filters_by_name_and_phase(self):
        tracer = Tracer()
        tracer.event("a", phase="mine")
        tracer.event("a", phase="leader")
        tracer.event("b", phase="mine")
        assert tracer.count() == 3
        assert tracer.count(name="a") == 2
        assert tracer.count(phase="mine") == 2
        assert tracer.count(name="a", phase="mine") == 1
        assert tracer.records_named("b")[0].phase == "mine"

    def test_digest_ignores_wall_sidecar(self):
        one, two = Tracer(), Tracer()
        one.event("e", txs=3, wall={"duration_s": 0.001})
        two.event("e", txs=3, wall={"duration_s": 99.0})
        assert one.digest() == two.digest()
        assert len(one.digest()) == 64  # sha256 hex

    def test_digest_sees_attrs(self):
        one, two = Tracer(), Tracer()
        one.event("e", txs=3)
        two.event("e", txs=4)
        assert one.digest() != two.digest()

    def test_span_emits_begin_end_with_wall_duration(self):
        tracer = Tracer()
        with tracer.span("build", phase="setup"):
            tracer.event("inner")
        names = [r.name for r in tracer.records]
        assert names == ["build.begin", "inner", "build.end"]
        end = tracer.records[-1]
        assert end.phase == "setup"
        assert end.wall["duration_s"] >= 0.0

    def test_span_emits_end_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("build"):
                raise RuntimeError("boom")
        assert [r.name for r in tracer.records] == ["build.begin", "build.end"]

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.event("a", time=1.0, shard=2, txs=5, wall={"duration_s": 0.1})
        tracer.event("b", phase="mine")
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        rows = read_jsonl(path)
        assert [r["name"] for r in rows] == ["a", "b"]
        assert rows[0]["wall"] == {"duration_s": 0.1}

    def test_digest_of_jsonl_matches_live_digest(self, tmp_path):
        tracer = Tracer()
        tracer.event("a", txs=1, wall={"duration_s": 0.25})
        tracer.event("b", shard=3)
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        assert digest_of_jsonl(path) == tracer.digest()
        # and the wall-free export digests identically too
        bare = tracer.write_jsonl(tmp_path / "bare.jsonl", include_wall=False)
        assert digest_of_jsonl(bare) == tracer.digest()

    def test_trace_digest_of_empty_stream(self):
        assert trace_digest([]) == Tracer().digest()

    def test_summary_renders(self):
        tracer = Tracer()
        tracer.event("block.forged", phase="mine", shard=0, time=2.0, txs=4)
        tracer.metrics.counter("protocol.blocks_forged").inc()
        text = render_trace_summary(tracer, title="unit")
        assert "unit" in text
        assert "mine" in text
        assert "protocol.blocks_forged" in text
        assert tracer.summary() == render_trace_summary(tracer, title="trace")


class TestActiveTracer:
    def test_off_by_default(self):
        assert not tracing_enabled()
        assert get_tracer() is None

    def test_env_switch_creates_process_default(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        assert tracing_enabled()
        tracer = get_tracer()
        assert isinstance(tracer, Tracer)
        assert get_tracer() is tracer  # stable across calls

    def test_env_zero_means_off(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "0")
        assert not tracing_enabled()
        assert get_tracer() is None

    def test_set_tracer_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        mine = Tracer()
        set_tracer(mine)
        assert get_tracer() is mine
        set_tracer(None)
        assert get_tracer() is not mine

    def test_use_tracer_scopes_and_nests(self):
        outer, inner = Tracer(), Tracer()
        with use_tracer(outer):
            assert get_tracer() is outer
            with use_tracer(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer
        assert get_tracer() is None

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                raise RuntimeError("boom")
        assert get_tracer() is None


class TestResolveTracer:
    def test_tracer_passes_through(self):
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer

    def test_true_builds_fresh_tracer(self):
        a, b = resolve_tracer(True), resolve_tracer(True)
        assert isinstance(a, Tracer) and isinstance(b, Tracer)
        assert a is not b

    def test_false_is_off_even_under_env(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        assert resolve_tracer(False) is None

    def test_none_follows_env_with_fresh_tracers(self, monkeypatch):
        assert resolve_tracer(None) is None
        monkeypatch.setenv(TRACE_ENV, "1")
        a, b = resolve_tracer(None), resolve_tracer(None)
        assert isinstance(a, Tracer)
        assert a is not b  # each run digests exactly its own records

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            resolve_tracer("yes")
