"""Benchmark regression observatory: records, stamps, and the check."""

import json

import pytest

from repro.errors import ConfigError
from repro.observe import (
    SCHEMA_VERSION,
    check_regressions,
    git_revision,
    load_bench_records,
    render_check,
    render_history,
    tracked_metrics,
    utc_timestamp,
)


def _write(results_dir, name, payload):
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload))
    return path


def stamped(name, **metrics):
    return {
        "bench": name,
        "schema_version": SCHEMA_VERSION,
        "git_rev": "abc1234",
        "recorded_at": "2026-08-06T00:00:00+00:00",
        **metrics,
    }


class TestStamping:
    def test_write_bench_record_stamps_schema_and_rev(self, tmp_path):
        from benchmarks.common import write_bench_record

        path = write_bench_record(
            "stampcheck", {"speedup": 2.0}, results_dir=tmp_path
        )
        record = json.loads(path.read_text())
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["bench"] == "stampcheck"
        assert record["speedup"] == 2.0
        # Written inside this git checkout, so the rev must resolve.
        assert record["git_rev"] == git_revision()
        assert record["recorded_at"].endswith("+00:00")
        assert "environment" in record

    def test_utc_timestamp_is_iso8601_utc(self):
        stamp = utc_timestamp()
        import datetime

        parsed = datetime.datetime.fromisoformat(stamp)
        assert parsed.utcoffset() == datetime.timedelta(0)

    def test_git_revision_none_outside_a_checkout(self, tmp_path):
        assert git_revision(tmp_path) is None


class TestLoadRecords:
    def test_loads_name_sorted_and_stamped(self, tmp_path):
        _write(tmp_path, "zeta", stamped("zeta", speedup=1.0))
        _write(tmp_path, "alpha", stamped("alpha", speedup=2.0))
        records = load_bench_records(tmp_path)
        assert [r.name for r in records] == ["alpha", "zeta"]
        assert all(not r.legacy for r in records)
        assert all(not r.problems for r in records)
        assert records[0].git_rev == "abc1234"

    def test_legacy_record_is_reported_not_crashed_on(self, tmp_path):
        _write(tmp_path, "old", {"bench": "old", "speedup": 3.0})
        (record,) = load_bench_records(tmp_path)
        assert record.legacy
        assert record.schema_version is None
        assert any("legacy record" in p for p in record.problems)
        assert tracked_metrics(record) == {"speedup": 3.0}
        assert "legacy (unstamped)" in render_history([record])

    def test_corrupt_file_is_reported_not_crashed_on(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        _write(tmp_path, "fine", stamped("fine", speedup=1.5))
        records = load_bench_records(tmp_path)
        broken = next(r for r in records if r.name == "broken")
        assert broken.parse_failed
        assert any("unparseable" in p for p in broken.problems)
        assert "UNPARSEABLE" in render_history(records)
        fine = next(r for r in records if r.name == "fine")
        assert not fine.problems

    def test_non_object_payload_is_a_problem(self, tmp_path):
        (tmp_path / "BENCH_list.json").write_text("[1, 2]")
        (record,) = load_bench_records(tmp_path)
        assert record.parse_failed
        assert any("expected a JSON object" in p for p in record.problems)

    def test_empty_directory_yields_no_records(self, tmp_path):
        assert load_bench_records(tmp_path) == []
        assert "no BENCH_*.json records" in render_history([])


class TestTrackedMetrics:
    def test_extracts_speedups_and_throughputs_by_dotted_path(self, tmp_path):
        payload = stamped(
            "proto",
            speedup=4.2,
            events_per_s=120000.0,
            wall_serial_s=9.0,  # not tracked: plain wall time
        )
        payload["profiles"] = [
            {"name": "small", "speedup": 2.0},
            {"name": "large", "speedup": 6.0, "events_per_s": 50.0},
        ]
        payload["kernels"] = {"merge": {"speedup_vs_legacy": 3.0}}
        _write(tmp_path, "proto", payload)
        (record,) = load_bench_records(tmp_path)
        assert tracked_metrics(record) == {
            "speedup": 4.2,
            "events_per_s": 120000.0,
            "profiles[0].speedup": 2.0,
            "profiles[1].speedup": 6.0,
            "profiles[1].events_per_s": 50.0,
            "kernels.merge.speedup_vs_legacy": 3.0,
        }

    def test_booleans_are_never_metrics(self, tmp_path):
        _write(tmp_path, "b", stamped("b", speedup_ok=True, speedup=1.0))
        (record,) = load_bench_records(tmp_path)
        assert tracked_metrics(record) == {"speedup": 1.0}


class TestCheckRegressions:
    def _records(self, tmp_path, sub, **metrics):
        directory = tmp_path / sub
        directory.mkdir()
        _write(directory, "bench", stamped("bench", **metrics))
        return load_bench_records(directory)

    def test_identical_sets_have_no_regressions(self, tmp_path):
        records = self._records(tmp_path, "a", speedup=2.0, txs_per_s=100.0)
        findings = check_regressions(records, records)
        assert len(findings) == 2
        assert not any(f.regressed for f in findings)

    def test_drop_beyond_tolerance_is_flagged(self, tmp_path):
        baseline = self._records(tmp_path, "base", speedup=2.0)
        candidate = self._records(tmp_path, "cand", speedup=1.5)
        (finding,) = check_regressions(candidate, baseline, tolerance=0.1)
        assert finding.regressed
        assert finding.change_pct == pytest.approx(-25.0)
        text = render_check([finding], tolerance=0.1)
        assert "REGRESSED" in text and "1 regression(s)" in text

    def test_drop_within_tolerance_passes(self, tmp_path):
        baseline = self._records(tmp_path, "base", speedup=2.0)
        candidate = self._records(tmp_path, "cand", speedup=1.9)
        (finding,) = check_regressions(candidate, baseline, tolerance=0.1)
        assert not finding.regressed

    def test_improvement_passes(self, tmp_path):
        baseline = self._records(tmp_path, "base", speedup=2.0)
        candidate = self._records(tmp_path, "cand", speedup=3.0)
        (finding,) = check_regressions(candidate, baseline)
        assert not finding.regressed
        assert finding.change_pct == pytest.approx(50.0)

    def test_new_benchmark_without_baseline_is_skipped(self, tmp_path):
        baseline = self._records(tmp_path, "base", speedup=2.0)
        new_dir = tmp_path / "new"
        new_dir.mkdir()
        _write(new_dir, "other", stamped("other", speedup=1.0))
        candidate = load_bench_records(new_dir)
        assert check_regressions(candidate, baseline) == []

    def test_metric_on_one_side_only_is_skipped(self, tmp_path):
        baseline = self._records(tmp_path, "base", speedup=2.0, txs_per_s=9.0)
        candidate = self._records(tmp_path, "cand", speedup=2.0)
        findings = check_regressions(candidate, baseline)
        assert [f.metric for f in findings] == ["speedup"]

    def test_negative_tolerance_rejected(self, tmp_path):
        records = self._records(tmp_path, "a", speedup=1.0)
        with pytest.raises(ConfigError, match="tolerance"):
            check_regressions(records, records, tolerance=-0.5)

    def test_committed_results_pass_against_themselves(self):
        import pathlib

        results = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "results"
        )
        records = load_bench_records(results)
        assert records, "committed BENCH_*.json baselines disappeared"
        findings = check_regressions(records, records)
        assert findings, "no tracked metrics in committed baselines"
        assert not any(f.regressed for f in findings)
