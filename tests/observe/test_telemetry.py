"""The telemetry layer: heartbeats, shard-load accounting, imbalance.

Covers the pure pieces (gini, imbalance indices, ShardStats round-trip
and rendering) and the integration contract: shard-load totals must
equal the ``ProtocolResult`` counters, and the traffic matrix's row
sums must account for every classified transaction.
"""

import io
import json

import pytest

from repro.consensus.miner import MinerIdentity
from repro.core.shard_formation import MAXSHARD_ID
from repro.errors import ConfigError
from repro.observe import (
    HeartbeatSample,
    ShardStats,
    Telemetry,
    get_telemetry,
    gini,
    imbalance_indices,
    resolve_telemetry,
    use_telemetry,
)
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads import (
    streaming_powerlaw_contract_workload,
    uniform_contract_workload,
)


class TestGini:
    def test_empty_and_all_zero_are_perfectly_equal(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0, 0.0]) == 0.0

    def test_equal_values_give_zero(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == 0.0

    def test_total_concentration_approaches_one(self):
        # One shard holds everything: G = (n-1)/n exactly.
        assert gini([0.0, 0.0, 0.0, 100.0]) == pytest.approx(3.0 / 4.0)

    def test_known_value(self):
        # Mean absolute difference of [1, 3] is 2; G = 2 / (2 * 2 * 2).
        assert gini([1.0, 3.0]) == pytest.approx(0.25)

    def test_order_invariant(self):
        assert gini([3.0, 1.0, 2.0]) == gini([1.0, 2.0, 3.0])

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigError):
            gini([1.0, -2.0])


class TestImbalanceIndices:
    def test_uniform_load(self):
        indices = imbalance_indices([10.0, 10.0, 10.0])
        assert indices["max_over_mean"] == pytest.approx(1.0)
        assert indices["gini"] == pytest.approx(0.0)
        assert indices["shards"] == 3

    def test_hotspot_load(self):
        indices = imbalance_indices([90.0, 5.0, 5.0])
        assert indices["max_over_mean"] == pytest.approx(2.7)
        assert indices["gini"] > 0.5

    def test_empty(self):
        indices = imbalance_indices([])
        assert indices["shards"] == 0
        assert indices["max_over_mean"] == 0.0


class TestShardStats:
    def _stats(self) -> ShardStats:
        stats = ShardStats()
        hot = stats.load(1)
        hot.blocks_forged, hot.blocks_empty = 10, 1
        hot.txs_confirmed, hot.mempool_peak, hot.evictions = 90, 40, 3
        cold = stats.load(2)
        cold.blocks_forged, cold.blocks_empty = 10, 8
        cold.txs_confirmed, cold.mempool_peak = 10, 5
        stats.record_route(1, 1, 80)
        stats.record_route(1, MAXSHARD_ID, 10)
        stats.record_route(2, 2, 10)
        return stats

    def test_totals(self):
        stats = self._stats()
        assert stats.total_blocks == 20
        assert stats.total_confirmed == 100
        assert stats.total_evictions == 3
        assert stats.total_routed == 100
        assert stats.maxshard_serialized == 10

    def test_empty_block_rate(self):
        stats = self._stats()
        assert stats.loads[2].empty_block_rate == pytest.approx(0.8)

    def test_imbalance_excludes_maxshard(self):
        stats = self._stats()
        stats.load(MAXSHARD_ID).txs_confirmed = 10_000
        indices = stats.imbalance()
        assert indices["shards"] == 2
        assert indices["max_over_mean"] == pytest.approx(90.0 / 50.0)

    def test_imbalance_unknown_column_rejected(self):
        with pytest.raises(ConfigError):
            self._stats().imbalance(key="nope")

    def test_round_trip(self):
        stats = self._stats()
        clone = ShardStats.from_dict(json.loads(json.dumps(stats.as_dict())))
        assert clone.as_dict() == stats.as_dict()
        assert clone.total_confirmed == stats.total_confirmed
        assert clone.maxshard_serialized == stats.maxshard_serialized

    def test_render_mentions_matrix_and_imbalance(self):
        text = self._stats().render(title="t")
        assert "traffic matrix" in text
        assert "maxshard_serialized=10" in text
        assert "gini=" in text
        assert "max/mean=" in text


class TestScope:
    def test_resolve_semantics(self):
        telemetry = Telemetry()
        assert resolve_telemetry(telemetry) is telemetry
        assert isinstance(resolve_telemetry(True), Telemetry)
        assert resolve_telemetry(False) is None
        assert resolve_telemetry(None) is None
        with use_telemetry(telemetry):
            assert get_telemetry() is telemetry
            assert resolve_telemetry(None) is telemetry
            # An explicit False opts out even inside a scope.
            assert resolve_telemetry(False) is None
        assert get_telemetry() is None

    def test_progress_line_writes_to_stream(self):
        sink = io.StringIO()
        telemetry = Telemetry(progress=True, stream=sink)
        telemetry.start()
        telemetry.heartbeat(
            time=10.0, injected=100, confirmed=25, evicted=0, pool_depths={1: 7}
        )
        line = sink.getvalue()
        assert "[heartbeat]" in line
        assert "injected=100" in line
        assert len(telemetry.samples) == 1
        assert isinstance(telemetry.samples[0], HeartbeatSample)

    def test_heartbeat_wall_fields_stay_in_sidecar(self):
        telemetry = Telemetry()
        telemetry.start()
        telemetry.heartbeat(
            time=1.0, injected=1, confirmed=0, evicted=0, pool_depths={}
        )
        payload = telemetry.samples[0].as_dict()
        assert "wall" in payload
        assert "wall_s" in payload["wall"]
        assert "wall_s" not in {k for k in payload if k != "wall"}


def _run(telemetry, workload=None, **overrides):
    miners = [MinerIdentity.create(f"t{i}") for i in range(6)]
    if workload is None:
        workload = uniform_contract_workload(
            total_txs=40, contract_shards=3, seed=7
        )
    config = ProtocolConfig(
        seed=7,
        trace=True,
        max_duration=5000.0,
        telemetry=telemetry,
        **overrides,
    )
    return ProtocolSimulation(miners, workload, config=config).run()


class TestProtocolIntegration:
    def test_shard_stats_totals_match_result_counters(self):
        telemetry = Telemetry(heartbeat_interval=100.0)
        result = _run(telemetry)
        stats = result.shard_stats
        assert stats is telemetry.shard_stats
        assert stats.total_confirmed == result.confirmed_count()
        assert stats.total_evictions == result.evicted
        per_shard = {
            shard: entry.txs_confirmed
            for shard, entry in stats.loads.items()
            if entry.txs_confirmed
        }
        assert per_shard == {
            shard: count
            for shard, count in result.per_shard_confirmed.items()
            if count
        }

    def test_traffic_rows_account_for_every_transaction(self):
        telemetry = Telemetry(heartbeat_interval=None)
        workload = uniform_contract_workload(
            total_txs=40, contract_shards=3, seed=7
        )
        result = _run(telemetry, workload=workload)
        stats = result.shard_stats
        assert stats.total_routed == len(workload)
        # Uniform single-contract calls execute on their home shard:
        # the matrix is diagonal and nothing is MaxShard-serialized.
        assert stats.maxshard_serialized == 0
        for home, row in stats.traffic.items():
            assert set(row) == {home}

    def test_streaming_traffic_matches_post_hoc_classification(self):
        telemetry = Telemetry(heartbeat_interval=None)
        stream = streaming_powerlaw_contract_workload(
            total_txs=60, contract_shards=4, alpha=1.0, seed=3
        )
        result = _run(
            telemetry, workload=stream, inject_batch=10, inject_interval=1.0
        )
        stats = result.shard_stats
        row_sums = {
            home: sum(row.values()) for home, row in stats.traffic.items()
        }
        assert sum(row_sums.values()) == 60
        # Home rows follow the stream's declared per-shard counts
        # (slot 0 = direct transfers homed on the MaxShard).
        assert row_sums == {
            shard: count
            for shard, count in stream.shard_counts.items()
            if count
        }

    def test_heartbeats_sampled_on_schedule(self):
        telemetry = Telemetry(heartbeat_interval=25.0)
        result = _run(telemetry)
        # Interval beats plus the final snapshot.
        assert len(telemetry.samples) >= 2
        times = [sample.time for sample in telemetry.samples]
        assert times == sorted(times)
        assert times[-1] == result.duration
        final = telemetry.samples[-1]
        assert final.confirmed == result.confirmed_count()

    def test_disabled_telemetry_costs_no_result_surface(self):
        result = _run(False)
        assert result.shard_stats is None
