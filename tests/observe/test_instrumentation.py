"""Integration tests: the instrumented seams emit deterministic traces.

These drive real simulations (protocol, campaign, games, executor) with
tracing on and check (a) the events cross-reference the results they
describe and (b) same-seed runs digest identically — the contract the CI
trace-smoke step enforces from the exported artifacts.
"""

import pytest

from repro.consensus.miner import MinerIdentity
from repro.consensus.pow import PoWParameters
from repro.core.epoch import EpochManager
from repro.core.merging.algorithm import IterativeMerging
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.core.selection.best_reply import BestReplyDynamics
from repro.core.selection.congestion_game import SelectionGameConfig
from repro.faults import FaultPlan
from repro.net.network import LatencyModel
from repro.observe import Tracer, use_tracer
from repro.runtime import SerialExecutor, use_executor
from repro.sim.campaign import Campaign
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import uniform_contract_workload

FAST_POW = PoWParameters(difficulty=0x40000 // 60)  # ~1 s blocks


def traced_protocol_run(trace=True, drop_probability=0.0, seed=5):
    miners = [MinerIdentity.create(f"obs-{i}") for i in range(5)]
    txs = uniform_contract_workload(total_txs=16, contract_shards=2, seed=3)
    config = ProtocolConfig(
        pow_params=FAST_POW,
        latency=LatencyModel(base_seconds=0.01, jitter_seconds=0.01),
        max_duration=500.0,
        seed=seed,
        trace=trace,
        fault_plan=FaultPlan.lossy(drop_probability) if drop_probability else None,
        retransmit_interval=5.0 if drop_probability else None,
    )
    return ProtocolSimulation(miners, txs, config=config).run()


@pytest.fixture(scope="module")
def traced_run():
    return traced_protocol_run()


class TestProtocolTrace:
    def test_result_carries_the_tracer(self, traced_run):
        assert isinstance(traced_run.trace, Tracer)
        assert len(traced_run.trace) > 0

    def test_trace_off_by_default(self):
        result = traced_protocol_run(trace=None)
        assert result.trace is None

    def test_phases_are_covered(self, traced_run):
        trace = traced_run.trace
        assert trace.count(name="workload.inject", phase="inject") == 1
        assert trace.count(name="block.forged", phase="mine") >= 1
        assert trace.count(name="run.complete", phase="result") == 1

    def test_block_events_match_result(self, traced_run):
        trace = traced_run.trace
        forged = trace.records_named("block.forged")
        assert forged
        confirmed = trace.records_named("run.complete")[0].attrs["confirmed"]
        assert confirmed == traced_run.confirmed_count()
        # the per-shard confirmation timeline is monotone in sim time
        for shard in {r.shard for r in forged}:
            times = [r.time for r in forged if r.shard == shard]
            assert times == sorted(times)

    def test_shard_confirmed_events_cover_every_shard(self, traced_run):
        trace = traced_run.trace
        confirmed = {r.shard for r in trace.records_named("shard.confirmed")}
        forged = {r.shard for r in trace.records_named("block.forged")}
        assert confirmed == forged

    def test_metrics_agree_with_events(self, traced_run):
        trace = traced_run.trace
        counters = trace.metrics.snapshot()["counters"]
        assert counters["protocol.blocks_forged"] == trace.count(
            name="block.forged"
        )

    def test_same_seed_runs_digest_identically(self, traced_run):
        again = traced_protocol_run()
        assert again.trace.digest() == traced_run.trace.digest()

    def test_different_seed_changes_digest(self, traced_run):
        other = traced_protocol_run(seed=6)
        assert other.trace.digest() != traced_run.trace.digest()

    def test_summary_includes_shard_timeline(self, traced_run):
        text = traced_run.trace.summary(title="protocol")
        assert "per-shard confirmation timeline" in text
        assert "shard 0:" in text


class TestFaultTrace:
    @pytest.fixture(scope="class")
    def faulty_run(self):
        return traced_protocol_run(drop_probability=0.2)

    def test_fault_events_match_fault_stats(self, faulty_run):
        trace = faulty_run.trace
        assert (
            trace.count(name="fault.drop") == faulty_run.fault_stats.drops
        )

    def test_protocol_reacts_with_retransmits(self, faulty_run):
        # The cross-reference the issue asks for: injected faults on one
        # side, the protocol's retransmission reaction on the other.
        trace = faulty_run.trace
        assert trace.count(name="fault.drop") > 0
        assert trace.count(name="retransmit.sweep") >= 0  # present in schema
        assert faulty_run.confirmed_count() > 0

    def test_faulty_runs_stay_deterministic(self, faulty_run):
        again = traced_protocol_run(drop_probability=0.2)
        assert again.trace.digest() == faulty_run.trace.digest()


class TestLeaderTrace:
    """Leader-phase events only exist under unified parameter broadcast."""

    def _unified_run(self, plan, seed=31):
        miners = [MinerIdentity.create(f"obs-ldr-{i}") for i in range(8)]
        txs = uniform_contract_workload(
            total_txs=30, contract_shards=1, seed=seed
        )
        config = ProtocolConfig(
            pow_params=FAST_POW,
            latency=LatencyModel(base_seconds=0.01, jitter_seconds=0.01),
            max_duration=120.0,
            seed=seed,
            fault_plan=plan,
            leader_timeout=5.0,
            retransmit_interval=2.0,
            trace=True,
        )
        return ProtocolSimulation(
            miners, txs, config=config, unified=True
        ).run()

    def test_honest_leader_broadcast_is_traced(self):
        result = self._unified_run(FaultPlan.lossy(0.05))
        trace = result.trace
        assert trace.count(name="leader.broadcast", phase="leader") == 1
        assert trace.count(name="leader.withhold") == 0

    def test_withholding_leader_and_timeout_fallbacks(self):
        from repro.faults import FaultyLeader

        result = self._unified_run(FaultPlan(leader=FaultyLeader("withhold")))
        trace = result.trace
        assert trace.count(name="leader.withhold", phase="leader") == 1
        timeouts = trace.records_named("leader.timeout")
        assert sum(r.attrs["fallbacks"] for r in timeouts) == (
            result.fault_stats.fallbacks
        )


class TestGameTrace:
    def test_selection_rounds_match_outcome(self):
        tracer = Tracer()
        with use_tracer(tracer):
            outcome = BestReplyDynamics(
                SelectionGameConfig(capacity=5), seed=1
            ).run([3.0, 2.0, 9.0, 1.0, 5.0, 7.0], miners=4)
        converged = tracer.records_named("selection.converged")
        assert len(converged) == 1
        assert converged[0].attrs["rounds"] == outcome.rounds
        assert converged[0].attrs["moves"] == outcome.moves
        per_round = tracer.records_named("selection.round")
        assert sum(r.attrs["deviations"] for r in per_round) == outcome.moves

    def test_merging_rounds_match_result(self):
        tracer = Tracer()
        with use_tracer(tracer):
            result = IterativeMerging(
                MergingGameConfig(shard_reward=10.0, lower_bound=10, subslots=8),
                seed=2,
            ).run([ShardPlayer(shard_id=i, size=4, cost=3.0) for i in range(5)])
        assert tracer.count(name="merge.round") == result.rounds
        final = tracer.records_named("merge.result")[0]
        assert final.attrs["new_shards"] == result.new_shard_count
        assert final.attrs["leftovers"] == len(result.leftover_players)
        assert tracer.count(name="merge.converge") >= result.rounds

    def test_games_are_silent_without_a_tracer(self):
        outcome = BestReplyDynamics(SelectionGameConfig(capacity=3), seed=1).run(
            [1.0, 2.0, 3.0], miners=2
        )
        assert outcome.converged  # no tracer, no crash


class TestExecutorTrace:
    def test_serial_map_emits_task_timings(self):
        tracer = Tracer()
        with use_tracer(tracer), use_executor(SerialExecutor()):
            from repro.runtime import get_default_executor

            results = get_default_executor().map(lambda x: x * x, range(6))
        assert results == [0, 1, 4, 9, 16, 25]
        record = tracer.records_named("executor.map")[0]
        assert record.phase == "runtime"
        assert record.attrs["mode"] == "serial"
        assert record.attrs["tasks"] == 6
        assert record.attrs["workers"] == 1
        assert record.wall["duration_s"] >= 0.0
        assert tracer.metrics.snapshot()["counters"]["runtime.tasks"] == 6

    def test_map_events_exclude_wall_from_digest(self):
        def digest_once():
            tracer = Tracer()
            with use_tracer(tracer), use_executor(SerialExecutor()):
                SerialExecutor().map(lambda x: x + 1, range(4))
            return tracer.digest()

        assert digest_once() == digest_once()


class TestCampaignTrace:
    def make_traffic(self, epoch):
        return uniform_contract_workload(
            total_txs=20, contract_shards=2, seed=40 + epoch
        )

    def test_epoch_events_match_outcomes(self):
        miners = [MinerIdentity.create(f"obs-camp-{i}") for i in range(12)]
        campaign = Campaign(
            EpochManager(miners),
            base_seed=1,
            executor=SerialExecutor(),
            trace=True,
        )
        result = campaign.run([self.make_traffic(e) for e in range(2)])
        trace = result.trace
        assert isinstance(trace, Tracer)
        assert trace.count(name="epoch.plan", phase="campaign") == len(
            result.epochs
        )
        results = trace.records_named("epoch.result")
        assert [r.attrs["confirmed"] for r in results] == [
            e.result.confirmed_transactions for e in result.epochs
        ]
        counters = trace.metrics.snapshot()["counters"]
        assert counters["campaign.epochs"] == len(result.epochs)
        assert counters["campaign.confirmed"] == result.total_confirmed

    def test_campaign_trace_off_by_default(self):
        miners = [MinerIdentity.create(f"obs-camp2-{i}") for i in range(8)]
        campaign = Campaign(
            EpochManager(miners), base_seed=2, executor=SerialExecutor()
        )
        result = campaign.run([self.make_traffic(0)])
        assert result.trace is None
