"""Tests for repro.observe.metrics."""

import pytest

from repro.errors import ConfigError
from repro.observe import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_defaults_to_one(self):
        c = Counter("c")
        c.inc()
        c.inc(2)
        assert c.value == 3

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigError, match="cannot decrease"):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(4.0)
        g.set(2.5)
        assert g.value == 2.5


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("h")
        for v in (1, 2, 3, 4, 10):
            h.observe(v)
        assert h.count == 5
        assert h.total == 20.0
        assert h.mean == 4.0
        assert h.minimum == 1.0
        assert h.maximum == 10.0

    def test_nearest_rank_quantiles(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 51.0  # nearest rank on 0..99 positions
        assert h.quantile(1.0) == 100.0

    def test_empty_histogram_is_all_zero(self):
        h = Histogram("h")
        assert h.summary() == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
        }

    def test_quantile_validation(self):
        with pytest.raises(ConfigError):
            Histogram("h").quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_type_shadowing_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError, match="already registered as a counter"):
            reg.gauge("x")
        with pytest.raises(ConfigError, match="already registered as a counter"):
            reg.histogram("x")

    def test_snapshot_is_deterministic_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("z.count").inc(3)
        reg.gauge("a.level").set(1.5)
        reg.histogram("m.samples").observe(2)
        snap = reg.snapshot()
        assert snap["counters"] == {"z.count": 3}
        assert snap["gauges"] == {"a.level": 1.5}
        assert snap["histograms"]["m.samples"]["count"] == 1
        json.dumps(snap)  # must serialize cleanly

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("blocks").inc()
        reg.histogram("rounds").observe(4)
        rendered = reg.render()
        assert "blocks = 1" in rendered
        assert "rounds: n=1" in rendered

    def test_render_empty(self):
        assert MetricsRegistry().render() == "  (no metrics)"
