"""Tests for repro.observe.metrics."""

import pytest

from repro.errors import ConfigError
from repro.observe import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_defaults_to_one(self):
        c = Counter("c")
        c.inc()
        c.inc(2)
        assert c.value == 3

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigError, match="cannot decrease"):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(4.0)
        g.set(2.5)
        assert g.value == 2.5


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("h")
        for v in (1, 2, 3, 4, 10):
            h.observe(v)
        assert h.count == 5
        assert h.total == 20.0
        assert h.mean == 4.0
        assert h.minimum == 1.0
        assert h.maximum == 10.0

    def test_nearest_rank_quantiles(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 51.0  # nearest rank on 0..99 positions
        assert h.quantile(1.0) == 100.0

    def test_empty_histogram_is_all_zero(self):
        h = Histogram("h")
        assert h.summary() == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_quantile_validation(self):
        with pytest.raises(ConfigError):
            Histogram("h").quantile(1.5)

    def test_nearest_rank_percentiles_are_exact_samples(self):
        h = Histogram("h")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.percentile(0.0) == 1.0
        assert h.percentile(50.0) == 50.0  # ceil(0.5 * 100) = rank 50
        assert h.percentile(95.0) == 95.0
        assert h.percentile(99.0) == 99.0
        assert h.percentile(100.0) == 100.0
        # Every result is one of the observed samples.
        for p in (1, 33.3, 66.6, 97.5):
            assert h.percentile(p) in h.samples

    def test_percentile_single_sample(self):
        h = Histogram("h")
        h.observe(42.0)
        for p in (0.0, 50.0, 99.0, 100.0):
            assert h.percentile(p) == 42.0

    def test_percentile_empty_returns_zero(self):
        h = Histogram("h")
        assert h.percentile(99.0) == 0.0
        assert h.percentiles((50.0, 99.0)) == {50.0: 0.0, 99.0: 0.0}

    def test_percentile_with_ties(self):
        h = Histogram("h")
        for v in (5.0, 5.0, 5.0, 5.0, 9.0):
            h.observe(v)
        assert h.percentile(50.0) == 5.0
        assert h.percentile(80.0) == 5.0  # rank 4 of 5 is still the tie
        assert h.percentile(81.0) == 9.0
        assert h.percentile(99.0) == 9.0

    def test_percentiles_batch_matches_single_calls(self):
        h = Histogram("h")
        for v in (3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0):
            h.observe(v)
        batch = h.percentiles((0.0, 50.0, 95.0, 99.0, 100.0))
        for p, value in batch.items():
            assert value == h.percentile(p)

    def test_percentile_validation(self):
        with pytest.raises(ConfigError):
            Histogram("h").percentile(101.0)
        with pytest.raises(ConfigError):
            Histogram("h").percentiles([-1.0])

    def test_summary_includes_p99(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(v)
        assert h.summary()["p99"] == 99.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_type_shadowing_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError, match="already registered as a counter"):
            reg.gauge("x")
        with pytest.raises(ConfigError, match="already registered as a counter"):
            reg.histogram("x")

    def test_snapshot_is_deterministic_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("z.count").inc(3)
        reg.gauge("a.level").set(1.5)
        reg.histogram("m.samples").observe(2)
        snap = reg.snapshot()
        assert snap["counters"] == {"z.count": 3}
        assert snap["gauges"] == {"a.level": 1.5}
        assert snap["histograms"]["m.samples"]["count"] == 1
        json.dumps(snap)  # must serialize cleanly

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("blocks").inc()
        reg.histogram("rounds").observe(4)
        rendered = reg.render()
        assert "blocks = 1" in rendered
        assert "rounds: n=1" in rendered

    def test_render_empty(self):
        assert MetricsRegistry().render() == "  (no metrics)"
