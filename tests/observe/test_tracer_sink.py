"""The rolling digest and the streaming sink (bounded-memory tracing)."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.observe.export import digest_of_jsonl, trace_digest
from repro.observe.tracer import Tracer


def _emit_some(tracer: Tracer, n: int) -> None:
    for i in range(n):
        tracer.event(
            "step", time=float(i), phase="p", shard=i % 3, k=i,
            wall={"noise": i},
        )


class TestRollingDigest:
    def test_matches_batch_digest(self):
        tracer = Tracer()
        _emit_some(tracer, 25)
        assert tracer.digest() == trace_digest(tracer.records)

    def test_digest_is_readable_mid_stream(self):
        tracer = Tracer()
        _emit_some(tracer, 3)
        first = tracer.digest()
        _emit_some(tracer, 3)
        assert tracer.digest() != first
        assert tracer.digest() == trace_digest(tracer.records)

    def test_count_from_tally(self):
        tracer = Tracer()
        _emit_some(tracer, 10)
        tracer.event("other", phase="q")
        assert tracer.count("step") == 10
        assert tracer.count(phase="p") == 10
        assert tracer.count("other", phase="q") == 1
        assert tracer.count() == 11


class TestSinkMode:
    def test_spills_beyond_buffer_limit(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=sink, buffer_limit=8)
        _emit_some(tracer, 30)
        assert tracer.spilled >= 24
        assert len(tracer.records) < 8
        assert len(tracer) == 30
        assert tracer.count("step") == 30

    def test_sink_file_is_the_complete_trace(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=sink, buffer_limit=4)
        _emit_some(tracer, 13)
        digest = tracer.digest()
        assert tracer.finish_sink() == sink
        assert len(sink.read_text().splitlines()) == 13
        # The exported file recomputes to the same wall-excluding digest.
        assert digest_of_jsonl(sink) == digest

    def test_digest_identical_to_unsinked_run(self, tmp_path):
        plain = Tracer()
        sunk = Tracer(sink=tmp_path / "t.jsonl", buffer_limit=2)
        _emit_some(plain, 9)
        _emit_some(sunk, 9)
        assert sunk.digest() == plain.digest()

    def test_record_apis_refuse_after_spill(self, tmp_path):
        tracer = Tracer(sink=tmp_path / "t.jsonl", buffer_limit=2)
        _emit_some(tracer, 5)
        with pytest.raises(SimulationError, match="streamed"):
            tracer.records_named("step")
        with pytest.raises(SimulationError, match="streamed"):
            tracer.to_jsonl()
        with pytest.raises(SimulationError, match="streamed"):
            tracer.write_jsonl(tmp_path / "elsewhere.jsonl")

    def test_summary_survives_spill(self, tmp_path):
        tracer = Tracer(sink=tmp_path / "t.jsonl", buffer_limit=2)
        _emit_some(tracer, 7)
        text = tracer.summary()
        assert "7 records" in text
        assert "step: 7" in text

    def test_finish_sink_requires_a_sink(self):
        with pytest.raises(ConfigError):
            Tracer().finish_sink()

    def test_buffer_limit_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigError):
            Tracer(sink=tmp_path / "t.jsonl", buffer_limit=0)


class TestAbsorb:
    def test_absorb_equals_emission(self):
        emitted = Tracer()
        _emit_some(emitted, 6)
        absorber = Tracer()
        absorber.absorb(emitted.records)
        assert absorber.digest() == emitted.digest()
        assert len(absorber) == 6
        assert absorber._seq == emitted._seq
        assert absorber.count("step") == 6
