"""Documentation consistency: the docs reference things that exist."""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/algorithms.md"]
    )
    def test_document_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1_000, f"{name} looks stubby"


class TestReferencedModulesExist:
    def _module_references(self, text: str) -> set[str]:
        return set(re.findall(r"`(repro(?:\.[a-z_]+)+)", text))

    @pytest.mark.parametrize("name", ["DESIGN.md", "docs/algorithms.md"])
    def test_backticked_repro_paths_import(self, name):
        text = (ROOT / name).read_text()
        for dotted in sorted(self._module_references(text)):
            parts = dotted.split(".")
            # Try progressively shorter prefixes: the reference may name
            # a module attribute (function/class) rather than a module.
            for cut in range(len(parts), 1, -1):
                try:
                    module = importlib.import_module(".".join(parts[:cut]))
                except ModuleNotFoundError:
                    continue
                remainder = parts[cut:]
                obj = module
                for attr in remainder:
                    assert hasattr(obj, attr), f"{dotted} (in {name})"
                    obj = getattr(obj, attr)
                break
            else:
                pytest.fail(f"unresolvable reference {dotted} in {name}")

    def test_experiment_ids_in_experiments_md_are_registered(self):
        from repro.experiments import experiment_ids

        text = (ROOT / "EXPERIMENTS.md").read_text()
        display = {"table1": "Table I", "security": "Sec. IV-D"}
        for eid in experiment_ids():
            label = display.get(eid, eid)
            # fig3a appears as "Fig. 3(a)" in prose; accept either form.
            alt = re.sub(r"fig(\d)(\w)", r"Fig. \1(\2)", eid)
            assert label in text or eid in text or alt in text, eid

    def test_readme_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.findall(r"examples/(\w+\.py)", text):
            assert (ROOT / "examples" / match).exists(), match

    def test_benchmark_files_cover_every_experiment(self):
        from repro.experiments import experiment_ids

        bench_names = {p.stem for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for eid in experiment_ids():
            assert f"bench_{eid}" in bench_names, eid
