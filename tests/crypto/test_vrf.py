"""Tests for repro.crypto.vrf."""

import pytest

from repro.crypto.keys import KeyPair
from repro.crypto.vrf import VRFOutput, elect_leader, vrf_prove, vrf_uniform, vrf_verify
from repro.errors import VRFVerificationError


class TestVRFProve:
    def test_deterministic(self):
        kp = KeyPair.from_seed("s")
        assert vrf_prove(kp, "in") == vrf_prove(kp, "in")

    def test_input_sensitivity(self):
        kp = KeyPair.from_seed("s")
        assert vrf_prove(kp, "a").output != vrf_prove(kp, "b").output

    def test_key_sensitivity(self):
        a, b = KeyPair.from_seed("a"), KeyPair.from_seed("b")
        assert vrf_prove(a, "in").output != vrf_prove(b, "in").output

    def test_uniform_in_unit_interval(self):
        kp = KeyPair.from_seed("s")
        assert 0.0 <= vrf_uniform(kp, "in") < 1.0

    def test_output_differs_from_proof(self):
        result = vrf_prove(KeyPair.from_seed("s"), "in")
        assert result.output != result.proof


class TestVRFVerify:
    def test_honest_output_verifies(self):
        kp = KeyPair.from_seed("s")
        assert vrf_verify(vrf_prove(kp, "in"), kp)

    def test_forged_output_fails_with_keypair(self):
        kp = KeyPair.from_seed("s")
        honest = vrf_prove(kp, "in")
        forged = VRFOutput(
            public=kp.public,
            vrf_input="in",
            output="0" * 64,
            proof=honest.proof,
        )
        assert not vrf_verify(forged, kp)

    def test_wrong_keypair_fails(self):
        kp, other = KeyPair.from_seed("s"), KeyPair.from_seed("o")
        assert not vrf_verify(vrf_prove(kp, "in"), other)

    def test_structural_check_without_keypair(self):
        kp = KeyPair.from_seed("s")
        assert vrf_verify(vrf_prove(kp, "in"))


class TestElectLeader:
    def test_single_candidate_wins(self):
        kp = KeyPair.from_seed("only")
        leader, proof = elect_leader([kp], "epoch")
        assert leader == kp
        assert vrf_verify(proof, kp)

    def test_deterministic_for_same_epoch(self):
        candidates = [KeyPair.from_seed(str(i)) for i in range(10)]
        first, __ = elect_leader(candidates, "epoch-1")
        second, __ = elect_leader(candidates, "epoch-1")
        assert first == second

    def test_varies_across_epochs(self):
        candidates = [KeyPair.from_seed(str(i)) for i in range(10)]
        winners = {elect_leader(candidates, f"epoch-{e}")[0].public for e in range(30)}
        assert len(winners) > 1  # leadership rotates with the seed

    def test_order_invariant(self):
        candidates = [KeyPair.from_seed(str(i)) for i in range(5)]
        forward, __ = elect_leader(candidates, "e")
        backward, __ = elect_leader(list(reversed(candidates)), "e")
        assert forward == backward

    def test_empty_candidates_rejected(self):
        with pytest.raises(VRFVerificationError):
            elect_leader([], "epoch")

    def test_winner_has_lowest_output(self):
        candidates = [KeyPair.from_seed(str(i)) for i in range(8)]
        leader, proof = elect_leader(candidates, "epoch")
        outputs = [vrf_prove(kp, "epoch").output for kp in candidates]
        assert proof.output == min(outputs)
