"""Tests for repro.crypto.randhound."""

import pytest

from repro.crypto.keys import KeyPair
from repro.crypto.randhound import BeaconRound, RandHoundBeacon, group_draw
from repro.errors import BeaconError


def make_participants(n: int) -> list[KeyPair]:
    return [KeyPair.from_seed(f"p{i}") for i in range(n)]


class TestBeacon:
    def test_round_produces_randomness(self):
        beacon = RandHoundBeacon(make_participants(4))
        completed = beacon.run_round()
        assert len(completed.randomness) == 64

    def test_rounds_differ(self):
        beacon = RandHoundBeacon(make_participants(4))
        r1, r2 = beacon.run_round(), beacon.run_round()
        assert r1.randomness != r2.randomness

    def test_replay_is_identical(self):
        a = RandHoundBeacon(make_participants(4)).run_round()
        b = RandHoundBeacon(make_participants(4)).run_round()
        assert a.randomness == b.randomness

    def test_transcript_verifies(self):
        completed = RandHoundBeacon(make_participants(5)).run_round()
        assert completed.verify()

    def test_tampered_reveal_fails_verification(self):
        completed = RandHoundBeacon(make_participants(3)).run_round()
        tampered_reveals = dict(completed.reveals)
        victim = next(iter(tampered_reveals))
        tampered_reveals[victim] = "f" * 64
        tampered = BeaconRound(
            round_id=completed.round_id,
            commitments=completed.commitments,
            reveals=tampered_reveals,
            randomness=completed.randomness,
        )
        assert not tampered.verify()

    def test_tampered_randomness_fails_verification(self):
        completed = RandHoundBeacon(make_participants(3)).run_round()
        tampered = BeaconRound(
            round_id=completed.round_id,
            commitments=completed.commitments,
            reveals=completed.reveals,
            randomness="0" * 64,
        )
        assert not tampered.verify()

    def test_withholding_detected(self):
        participants = make_participants(3)
        beacon = RandHoundBeacon(participants)
        with pytest.raises(BeaconError, match="withheld"):
            beacon.run_round(withholders={participants[0].public})

    def test_empty_participants_rejected(self):
        with pytest.raises(BeaconError):
            RandHoundBeacon([])

    def test_duplicate_participants_rejected(self):
        kp = KeyPair.from_seed("dup")
        with pytest.raises(BeaconError):
            RandHoundBeacon([kp, kp])

    def test_history_accumulates(self):
        beacon = RandHoundBeacon(make_participants(2))
        beacon.run_round()
        beacon.run_round()
        assert [r.round_id for r in beacon.history] == [0, 1]


class TestGroupDraw:
    def test_in_range(self):
        for i in range(50):
            draw = group_draw("rand", f"pk{i}", groups=100)
            assert 1 <= draw <= 100

    def test_deterministic(self):
        assert group_draw("r", "pk") == group_draw("r", "pk")

    def test_randomness_sensitivity(self):
        draws_a = [group_draw("ra", f"pk{i}") for i in range(50)]
        draws_b = [group_draw("rb", f"pk{i}") for i in range(50)]
        assert draws_a != draws_b

    def test_roughly_even_split(self):
        draws = [group_draw("rand", f"pk{i}", groups=2) for i in range(2_000)]
        ones = draws.count(1)
        assert 900 < ones < 1_100

    def test_invalid_groups_rejected(self):
        with pytest.raises(BeaconError):
            group_draw("rand", "pk", groups=0)
