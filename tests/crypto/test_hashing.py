"""Tests for repro.crypto.hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import hash_items, int_from_hash, sha256_hex, uniform_from_hash


class TestSha256Hex:
    def test_known_vector(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_str_and_bytes_agree(self):
        assert sha256_hex("hello") == sha256_hex(b"hello")

    def test_distinct_inputs_distinct_digests(self):
        assert sha256_hex("a") != sha256_hex("b")

    @given(st.text())
    def test_always_64_hex_digits(self, text):
        digest = sha256_hex(text)
        assert len(digest) == 64
        int(digest, 16)  # parses as hex


class TestHashItems:
    def test_deterministic(self):
        assert hash_items([1, "a", None]) == hash_items([1, "a", None])

    def test_domain_separates(self):
        assert hash_items([1], domain="x") != hash_items([1], domain="y")

    def test_order_matters(self):
        assert hash_items([1, 2]) != hash_items([2, 1])

    def test_item_boundaries_matter(self):
        # ["ab"] must not collide with ["a", "b"].
        assert hash_items(["ab"]) != hash_items(["a", "b"])


class TestUniformFromHash:
    def test_in_unit_interval(self):
        value = uniform_from_hash(sha256_hex("x"))
        assert 0.0 <= value < 1.0

    def test_rejects_short_digest(self):
        with pytest.raises(ValueError):
            uniform_from_hash("abcd")

    @given(st.text(max_size=64))
    def test_uniform_for_any_input(self, text):
        value = uniform_from_hash(sha256_hex(text))
        assert 0.0 <= value < 1.0

    def test_roughly_uniform_distribution(self):
        values = [uniform_from_hash(sha256_hex(str(i))) for i in range(2_000)]
        mean = sum(values) / len(values)
        assert 0.47 < mean < 0.53


class TestIntFromHash:
    def test_in_range(self):
        for modulus in (1, 2, 7, 100):
            value = int_from_hash(sha256_hex("seed"), modulus)
            assert 0 <= value < modulus

    def test_rejects_nonpositive_modulus(self):
        with pytest.raises(ValueError):
            int_from_hash(sha256_hex("seed"), 0)

    def test_covers_all_residues(self):
        seen = {int_from_hash(sha256_hex(str(i)), 5) for i in range(200)}
        assert seen == {0, 1, 2, 3, 4}
