"""Tests for repro.crypto.merkle."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleProof, MerkleTree


class TestMerkleTree:
    def test_empty_tree_has_sentinel_root(self):
        assert MerkleTree([]).root == MerkleTree([]).root
        assert len(MerkleTree([])) == 0

    def test_single_item(self):
        tree = MerkleTree(["tx1"])
        assert tree.proof(0).verify(tree.root)

    def test_root_changes_with_content(self):
        assert MerkleTree(["a"]).root != MerkleTree(["b"]).root

    def test_root_changes_with_order(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["b", "a"]).root

    def test_deterministic(self):
        items = [f"tx{i}" for i in range(7)]
        assert MerkleTree(items).root == MerkleTree(items).root

    def test_proofs_verify_for_every_leaf(self):
        for n in (1, 2, 3, 4, 5, 8, 13):
            items = [f"tx{i}" for i in range(n)]
            tree = MerkleTree(items)
            for index in range(n):
                assert tree.proof(index).verify(tree.root), (n, index)

    def test_proof_fails_against_other_root(self):
        tree = MerkleTree(["a", "b", "c"])
        other = MerkleTree(["a", "b", "d"])
        assert not tree.proof(0).verify(other.root)

    def test_proof_for_tampered_leaf_fails(self):
        tree = MerkleTree(["a", "b", "c"])
        proof = tree.proof(1)
        forged = MerkleProof(index=1, leaf="evil", siblings=proof.siblings)
        assert not forged.verify(tree.root)

    def test_proof_with_bad_side_marker_fails(self):
        tree = MerkleTree(["a", "b"])
        proof = tree.proof(0)
        corrupted = MerkleProof(
            index=0,
            leaf=proof.leaf,
            siblings=tuple(("X", sib) for __, sib in proof.siblings),
        )
        assert not corrupted.verify(tree.root)

    def test_out_of_range_proof_rejected(self):
        tree = MerkleTree(["a"])
        with pytest.raises(IndexError):
            tree.proof(1)
        with pytest.raises(IndexError):
            tree.proof(-1)

    @given(st.lists(st.text(min_size=1), min_size=1, max_size=24, unique=True))
    def test_property_all_proofs_verify(self, items):
        tree = MerkleTree(items)
        for index in range(len(items)):
            assert tree.proof(index).verify(tree.root)

    @given(
        st.lists(st.text(min_size=1), min_size=2, max_size=12, unique=True),
        st.data(),
    )
    def test_property_cross_leaf_proofs_fail(self, items, data):
        tree = MerkleTree(items)
        index = data.draw(st.integers(min_value=0, max_value=len(items) - 1))
        other = (index + 1) % len(items)
        proof = tree.proof(index)
        swapped = MerkleProof(
            index=index, leaf=items[other], siblings=proof.siblings
        )
        assert not swapped.verify(tree.root)
