"""Tests for repro.crypto.keys."""

from repro.crypto.keys import KeyPair, SignedEnvelope, sign, verify_signature


class TestKeyPair:
    def test_derivation_is_deterministic(self):
        assert KeyPair.from_seed("s") == KeyPair.from_seed("s")

    def test_distinct_seeds_distinct_keys(self):
        a, b = KeyPair.from_seed("a"), KeyPair.from_seed("b")
        assert a.public != b.public
        assert a.secret != b.secret

    def test_public_is_not_secret(self):
        kp = KeyPair.from_seed("s")
        assert kp.public != kp.secret

    def test_secret_hidden_from_repr(self):
        kp = KeyPair.from_seed("s")
        assert kp.secret not in repr(kp)

    def test_address_shape(self):
        address = KeyPair.from_seed("s").address()
        assert address.startswith("0x")
        assert len(address) == 42


class TestSignatures:
    def test_sign_is_deterministic(self):
        kp = KeyPair.from_seed("s")
        assert sign(kp, "msg") == sign(kp, "msg")

    def test_different_messages_differ(self):
        kp = KeyPair.from_seed("s")
        assert sign(kp, "m1") != sign(kp, "m2")

    def test_different_keys_differ(self):
        assert sign(KeyPair.from_seed("a"), "m") != sign(KeyPair.from_seed("b"), "m")

    def test_structural_verification(self):
        kp = KeyPair.from_seed("s")
        assert verify_signature(kp.public, "m", sign(kp, "m"))

    def test_structural_verification_rejects_garbage(self):
        kp = KeyPair.from_seed("s")
        assert not verify_signature(kp.public, "m", "short")


class TestSignedEnvelope:
    def test_seal_and_verify(self):
        kp = KeyPair.from_seed("s")
        envelope = SignedEnvelope.seal(kp, "payload")
        assert envelope.verify(kp)

    def test_wrong_key_fails(self):
        kp, other = KeyPair.from_seed("s"), KeyPair.from_seed("other")
        envelope = SignedEnvelope.seal(kp, "payload")
        assert not envelope.verify(other)

    def test_tampered_message_fails(self):
        kp = KeyPair.from_seed("s")
        envelope = SignedEnvelope.seal(kp, "payload")
        forged = SignedEnvelope(public=kp.public, message="other", tag=envelope.tag)
        assert not forged.verify(kp)
