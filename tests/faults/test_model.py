"""Tests for repro.faults.model and its wiring into the network."""

from repro.faults.model import FaultModel
from repro.faults.plan import CrashEvent, FaultPlan, MessageFaults, Partition
from repro.net.events import Scheduler
from repro.net.messages import Message, MessageKind
from repro.net.network import LatencyModel, Network
from repro.net.node import Node


class Recorder(Node):
    def __init__(self, node_id):
        self._id = node_id
        self.received = []

    @property
    def node_id(self):
        return self._id

    def receive(self, message):
        self.received.append(message)


def make_net(plan=None, n=3, seed=0, fault_seed=7):
    scheduler = Scheduler()
    faults = FaultModel(plan, seed=fault_seed) if plan is not None else None
    network = Network(
        scheduler,
        latency=LatencyModel(base_seconds=0.01, jitter_seconds=0.0),
        seed=seed,
        faults=faults,
    )
    nodes = [Recorder(f"n{i}") for i in range(n)]
    for node in nodes:
        network.register(node)
    return scheduler, network, nodes


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan.lossy(0.5)
        decisions = []
        for _ in range(2):
            model = FaultModel(plan, seed=42)
            decisions.append(
                [
                    model.filter_send(
                        Message(MessageKind.TX, "a", "b"), time=0.0
                    ).dropped
                    for __ in range(50)
                ]
            )
        assert decisions[0] == decisions[1]
        assert any(decisions[0])
        assert not all(decisions[0])

    def test_noop_plan_consumes_no_randomness(self):
        model = FaultModel(FaultPlan.none(), seed=1)
        state_before = model._rng.getstate()
        for _ in range(10):
            decision = model.filter_send(Message(MessageKind.TX, "a", "b"), time=0.0)
            assert not decision.dropped
            assert decision.extra_delay == 0.0
            assert not decision.duplicated
        assert model._rng.getstate() == state_before
        assert model.stats.messages_lost == 0


class TestNetworkWiring:
    def test_drops_counted_and_not_delivered(self):
        plan = FaultPlan.lossy(1.0)
        scheduler, network, nodes = make_net(plan)
        assert network.broadcast(MessageKind.TX, "n0", payload="p") == 0
        scheduler.run()
        assert all(node.received == [] for node in nodes)
        assert network.faults.stats.drops == 2
        assert network.messages_delivered == 0

    def test_duplicates_deliver_twice(self):
        plan = FaultPlan(
            default_message_faults=MessageFaults(duplicate_probability=1.0)
        )
        scheduler, network, nodes = make_net(plan)
        network.send(Message(MessageKind.TX, "n0", "n1", payload="p"))
        scheduler.run()
        assert len(nodes[1].received) == 2
        assert network.faults.stats.duplicates == 1

    def test_delay_spike_postpones_delivery(self):
        plan = FaultPlan(
            default_message_faults=MessageFaults(
                delay_spike_probability=1.0, delay_spike_seconds=5.0
            )
        )
        scheduler, network, nodes = make_net(plan)
        network.send(Message(MessageKind.TX, "n0", "n1"))
        scheduler.run()
        assert len(nodes[1].received) == 1
        assert scheduler.now > 0.01  # beyond the base latency
        assert network.faults.stats.delay_spikes == 1

    def test_partition_cuts_both_directions_until_heal(self):
        plan = FaultPlan(
            partitions=(Partition(members=("n0",), starts_at=0.0, heals_at=1.0),)
        )
        scheduler, network, nodes = make_net(plan)
        assert not network.send(Message(MessageKind.TX, "n0", "n1"))
        assert not network.send(Message(MessageKind.TX, "n1", "n0"))
        assert network.send(Message(MessageKind.TX, "n1", "n2"))
        scheduler.run()
        assert network.faults.stats.partition_drops == 2
        # After the heal the cut is gone.
        scheduler.schedule_in(2.0, lambda: None)
        scheduler.run()
        assert network.send(Message(MessageKind.TX, "n0", "n1"))

    def test_crashed_sender_and_recipient_lose_messages(self):
        plan = FaultPlan(crashes=(CrashEvent("n1", at=0.0, recover_at=10.0),))
        scheduler, network, nodes = make_net(plan)
        assert not network.send(Message(MessageKind.TX, "n1", "n2"))  # dead sender
        assert network.send(Message(MessageKind.TX, "n0", "n1"))  # scheduled...
        scheduler.run()
        assert nodes[1].received == []  # ...but dead on arrival
        assert network.faults.stats.crash_drops == 2

    def test_recovered_node_receives_again(self):
        plan = FaultPlan(crashes=(CrashEvent("n1", at=0.0, recover_at=5.0),))
        scheduler, network, nodes = make_net(plan)
        scheduler.schedule_in(
            6.0, lambda: network.send(Message(MessageKind.TX, "n0", "n1"))
        )
        scheduler.run()
        assert len(nodes[1].received) == 1

    def test_without_fault_model_behavior_unchanged(self):
        scheduler, network, nodes = make_net(plan=None)
        assert network.broadcast(MessageKind.TX, "n0", payload="p") == 2
        scheduler.run()
        assert all(len(node.received) == 1 for node in nodes[1:])
        assert network.faults is None
