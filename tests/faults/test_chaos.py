"""Chaos plan: every fault class at once, stats cross-checked vs trace.

Satellite 2 of the adversarial-suite PR. One plan combines lossy/dup/
delayed messaging, a crash with recovery, a two-node partition, and an
equivocating unification leader. The run must stay deterministic and —
the point of the test — ``FaultStats`` must agree exactly with the
per-category fault events the tracer recorded: the counters and the
trace are two independent views of the same injections.
"""

from repro.consensus.miner import MinerIdentity
from repro.consensus.pow import PoWParameters
from repro.faults.plan import (
    EQUIVOCATE,
    CrashEvent,
    FaultPlan,
    FaultyLeader,
    MessageFaults,
    Partition,
)
from repro.net.network import LatencyModel
from repro.observe import Tracer
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import uniform_contract_workload

FAST_POW = PoWParameters(difficulty=0x40000 // 60)
LOW_LATENCY = LatencyModel(base_seconds=0.01, jitter_seconds=0.01)


def chaos_inputs():
    miners = [MinerIdentity.create(f"chaos-{i}") for i in range(6)]
    txs = uniform_contract_workload(total_txs=24, contract_shards=1, seed=3)
    plan = FaultPlan(
        default_message_faults=MessageFaults(
            drop_probability=0.08,
            duplicate_probability=0.08,
            delay_spike_probability=0.1,
            delay_spike_seconds=0.5,
        ),
        crashes=(CrashEvent(miners[2].public, at=5.0, recover_at=15.0),),
        partitions=(
            Partition(
                members=(miners[0].public, miners[1].public),
                starts_at=2.0,
                heals_at=12.0,
            ),
        ),
        leader=FaultyLeader(EQUIVOCATE),
    )
    return miners, txs, plan


def run_chaos(miners, txs, plan):
    config = ProtocolConfig(
        pow_params=FAST_POW,
        latency=LOW_LATENCY,
        seed=5,
        max_duration=2_000.0,
        fault_plan=plan,
        leader_timeout=5.0,
        retransmit_interval=2.0,
        trace=Tracer(),
    )
    # unified=True so the equivocating-leader arm of the plan engages:
    # leader faults only exist during parameter unification.
    sim = ProtocolSimulation(miners, txs, config=config, unified=True)
    return sim, sim.run()


class TestChaosPlan:
    def test_stats_match_trace_event_counts(self):
        miners, txs, plan = chaos_inputs()
        _, result = run_chaos(miners, txs, plan)
        stats = result.fault_stats
        trace = result.trace

        # Every fault category actually fired under this plan/seed...
        assert stats.drops > 0
        assert stats.duplicates > 0
        assert stats.delay_spikes > 0
        assert stats.partition_drops > 0
        assert stats.crash_drops > 0

        # ...and each counter equals the tracer's independent tally.
        assert stats.drops == trace.count("fault.drop")
        assert stats.duplicates == trace.count("fault.duplicate")
        assert stats.delay_spikes == trace.count("fault.delay")
        assert stats.partition_drops == trace.count("fault.partition_drop")
        # Crash losses have two sides: messages a crashed node failed to
        # send, and in-flight messages arriving at a crashed recipient.
        assert stats.crash_drops == (
            trace.count("fault.crash_drop") + trace.count("fault.delivery_drop")
        )

        # The equivocating leader broadcast once (one send-side trace
        # event) and every honest miner independently caught it.
        assert trace.count("leader.equivocate") == 1
        assert result.equivocations_detected == len(miners) - 1
        assert result.fallbacks > 0  # honest miners fell back to solo

        # Chaos degrades but does not kill: the run still confirms work.
        assert result.confirmed_tx_ids

    def test_chaos_run_is_deterministic(self):
        miners, txs, plan = chaos_inputs()
        _, first = run_chaos(miners, txs, plan)
        _, second = run_chaos(miners, txs, plan)
        assert first.fault_stats == second.fault_stats
        assert first.confirmed_tx_ids == second.confirmed_tx_ids
        assert first.duration == second.duration
        assert first.trace.digest() == second.trace.digest()
