"""Tests for repro.faults.plan — declarative fault descriptions."""

import pytest

from repro.errors import ConfigError, FaultConfigError, SimulationError
from repro.faults.plan import (
    CrashEvent,
    FaultPlan,
    FaultStats,
    FaultyLeader,
    MessageFaults,
    Partition,
)
from repro.net.messages import MessageKind


class TestMessageFaults:
    def test_default_is_noop(self):
        assert MessageFaults().is_noop

    def test_any_probability_activates(self):
        assert not MessageFaults(drop_probability=0.1).is_noop
        assert not MessageFaults(duplicate_probability=0.1).is_noop
        assert not MessageFaults(delay_spike_probability=0.1).is_noop

    @pytest.mark.parametrize("field", [
        "drop_probability", "duplicate_probability", "delay_spike_probability",
    ])
    def test_rejects_out_of_range_probability(self, field):
        with pytest.raises(ConfigError):
            MessageFaults(**{field: 1.5})
        with pytest.raises(ConfigError):
            MessageFaults(**{field: -0.1})

    def test_rejects_negative_spike(self):
        with pytest.raises(ConfigError):
            MessageFaults(delay_spike_seconds=-1.0)


class TestCrashEvent:
    def test_crash_window(self):
        crash = CrashEvent("n1", at=10.0, recover_at=20.0)
        assert not crash.crashed_at(9.99)
        assert crash.crashed_at(10.0)
        assert crash.crashed_at(19.99)
        assert not crash.crashed_at(20.0)

    def test_permanent_crash(self):
        crash = CrashEvent("n1", at=5.0)
        assert crash.crashed_at(1e9)

    def test_recovery_must_follow_crash(self):
        with pytest.raises(ConfigError):
            CrashEvent("n1", at=10.0, recover_at=10.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            CrashEvent("n1", at=-1.0)


class TestPartition:
    def test_separates_across_cut_only_while_active(self):
        part = Partition(members=("a", "b"), starts_at=5.0, heals_at=15.0)
        assert not part.separates("a", "c", 4.0)
        assert part.separates("a", "c", 5.0)
        assert part.separates("c", "a", 10.0)  # symmetric
        assert not part.separates("a", "b", 10.0)  # same side
        assert not part.separates("c", "d", 10.0)  # both outside
        assert not part.separates("a", "c", 15.0)  # healed

    def test_permanent_partition(self):
        part = Partition(members=("a",))
        assert part.separates("a", "b", 1e9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Partition(members=())
        with pytest.raises(ConfigError):
            Partition(members=("a",), starts_at=5.0, heals_at=5.0)


class TestFaultyLeader:
    def test_modes(self):
        assert FaultyLeader("withhold").withholds
        assert FaultyLeader("equivocate").equivocates
        with pytest.raises(ConfigError):
            FaultyLeader("grief")


class TestFaultPlan:
    def test_default_plan_is_inactive(self):
        assert not FaultPlan().is_active
        assert not FaultPlan.none().is_active

    def test_lossy_plan_is_active(self):
        assert FaultPlan.lossy(0.2).is_active

    def test_crashes_partitions_leader_activate(self):
        assert FaultPlan(crashes=(CrashEvent("n", at=1.0),)).is_active
        assert FaultPlan(partitions=(Partition(members=("n",)),)).is_active
        assert FaultPlan(leader=FaultyLeader()).is_active

    def test_per_kind_override(self):
        block_faults = MessageFaults(drop_probability=0.5)
        plan = FaultPlan(message_faults=((MessageKind.BLOCK, block_faults),))
        assert plan.faults_for(MessageKind.BLOCK) is block_faults
        assert plan.faults_for(MessageKind.TX).is_noop
        assert plan.is_active


class TestConstructionErrors:
    """Bad fault configs are SimulationErrors that name the bad field.

    ``FaultConfigError`` inherits from both ``ConfigError`` (it *is* a
    configuration mistake) and ``SimulationError`` (so sim-level catch
    blocks see it), and every message leads with the offending field so
    a failing chaos run points straight at the plan.
    """

    @pytest.mark.parametrize("field_name", [
        "drop_probability", "duplicate_probability", "delay_spike_probability",
    ])
    def test_probability_errors_name_the_field(self, field_name):
        with pytest.raises(SimulationError, match=field_name):
            MessageFaults(**{field_name: 2.0})
        with pytest.raises(SimulationError, match=field_name):
            MessageFaults(**{field_name: -0.5})

    def test_negative_delay_names_the_field(self):
        with pytest.raises(SimulationError, match="delay_spike_seconds"):
            MessageFaults(delay_spike_seconds=-0.1)

    def test_crash_errors_name_the_field(self):
        with pytest.raises(SimulationError, match="at cannot be negative"):
            CrashEvent("n1", at=-2.0)
        with pytest.raises(SimulationError, match="recover_at"):
            CrashEvent("n1", at=3.0, recover_at=1.0)

    def test_partition_errors_name_the_field(self):
        with pytest.raises(SimulationError, match="members"):
            Partition(members=())
        with pytest.raises(SimulationError, match="starts_at"):
            Partition(members=("a",), starts_at=-1.0)
        with pytest.raises(SimulationError, match="heals_at"):
            Partition(members=("a",), starts_at=2.0, heals_at=1.0)

    def test_leader_error_names_the_field(self):
        with pytest.raises(SimulationError, match="mode"):
            FaultyLeader("explode")

    def test_plan_rejects_malformed_entries(self):
        with pytest.raises(SimulationError, match="default_message_faults"):
            FaultPlan(default_message_faults=0.5)
        with pytest.raises(SimulationError, match="message_faults"):
            FaultPlan(message_faults=(MessageKind.BLOCK,))
        with pytest.raises(SimulationError, match="message_faults"):
            FaultPlan(message_faults=((MessageKind.BLOCK, 0.5),))

    def test_fault_config_error_is_both_hierarchies(self):
        assert issubclass(FaultConfigError, ConfigError)
        assert issubclass(FaultConfigError, SimulationError)


class TestFaultStats:
    def test_messages_lost_aggregates_every_cause(self):
        stats = FaultStats(drops=3, partition_drops=2, crash_drops=1)
        assert stats.messages_lost == 6

    def test_default_is_all_zero(self):
        assert FaultStats() == FaultStats()
        assert FaultStats().messages_lost == 0
