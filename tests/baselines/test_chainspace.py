"""Tests for repro.baselines.chainspace."""

import pytest

from repro.baselines.chainspace import ChainSpaceModel
from repro.errors import SimulationError
from repro.sim.config import SimulationConfig, TimingModel
from repro.workloads.generators import three_input_workload, uniform_contract_workload


class TestPlacement:
    def test_even_distribution(self):
        model = ChainSpaceModel(shard_count=4, seed=1)
        txs = uniform_contract_workload(100, 3, seed=2)
        placed = model.place_transactions(txs)
        sizes = [len(v) for v in placed.values()]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_account_shard_deterministic(self):
        model = ChainSpaceModel(shard_count=9, seed=3)
        assert model.account_shard("0xua") == model.account_shard("0xua")

    def test_account_shards_spread(self):
        model = ChainSpaceModel(shard_count=9, seed=4)
        shards = {model.account_shard(f"0xu{i}") for i in range(200)}
        assert shards == set(range(9))

    def test_invalid_construction(self):
        with pytest.raises(SimulationError):
            ChainSpaceModel(shard_count=0)
        with pytest.raises(SimulationError):
            ChainSpaceModel(shard_count=1, miners_per_shard=0)
        with pytest.raises(SimulationError):
            ChainSpaceModel(shard_count=1, sbac_rounds=0)


class TestThroughput:
    def test_parallel_confirmation(self):
        timing = TimingModel.low_variance(interval=1.0, shape=48.0)
        txs = uniform_contract_workload(180, 8, seed=5)
        one = ChainSpaceModel(shard_count=1, seed=6).run_throughput(
            txs, config=SimulationConfig(timing=timing, seed=7)
        )
        nine = ChainSpaceModel(shard_count=9, seed=6).run_throughput(
            txs, config=SimulationConfig(timing=timing, seed=7)
        )
        assert nine.makespan < one.makespan
        assert nine.all_confirmed


class TestCommunication:
    def test_grows_linearly_with_volume(self):
        """The Fig. 4(b) shape."""
        model_small = ChainSpaceModel(shard_count=9, seed=8)
        model_large = ChainSpaceModel(shard_count=9, seed=8)
        small = model_small.count_communication(three_input_workload(500, seed=9))
        large = model_large.count_communication(three_input_workload(2_000, seed=9))
        ratio = large.per_shard_mean / small.per_shard_mean
        assert ratio == pytest.approx(4.0, rel=0.2)

    def test_zero_for_empty_workload(self):
        model = ChainSpaceModel(shard_count=9, seed=10)
        comm = model.count_communication([])
        assert comm.total_messages == 0
        assert comm.cross_shard_transactions == 0

    def test_most_multi_input_txs_are_cross_shard(self):
        model = ChainSpaceModel(shard_count=9, seed=11)
        comm = model.count_communication(three_input_workload(1_000, seed=12))
        assert comm.cross_shard_transactions > 900

    def test_rounds_scale_message_count(self):
        txs = three_input_workload(300, seed=13)
        one_round = ChainSpaceModel(9, sbac_rounds=1, seed=14).count_communication(txs)
        two_rounds = ChainSpaceModel(9, sbac_rounds=2, seed=14).count_communication(txs)
        assert two_rounds.total_messages == 2 * one_round.total_messages

    def test_per_shard_attribution_sums(self):
        model = ChainSpaceModel(shard_count=5, seed=15)
        comm = model.count_communication(three_input_workload(200, seed=16))
        assert sum(comm.per_shard.values()) == comm.total_messages
