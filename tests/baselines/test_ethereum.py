"""Tests for repro.baselines.ethereum."""

import pytest

from repro.baselines.ethereum import ethereum_spec, run_ethereum
from repro.sim.config import SimulationConfig, TimingModel
from repro.workloads.generators import uniform_contract_workload


class TestEthereumBaseline:
    def test_single_shard_spec(self):
        txs = uniform_contract_workload(20, 2, seed=1)
        spec = ethereum_spec(txs, miner_count=5)
        assert len(spec.miners) == 5
        assert len(spec.transactions) == 20
        assert spec.mode == "greedy"

    def test_run_confirms_everything(self):
        txs = uniform_contract_workload(30, 2, seed=2)
        result = run_ethereum(txs, miner_count=3, config=SimulationConfig(seed=3))
        assert result.all_confirmed
        assert result.confirmed_transactions == 30

    def test_serialized_makespan_scales_with_blocks(self):
        """20 txs at capacity 10 is 2 blocks; 200 txs is 20 blocks."""
        timing = TimingModel.low_variance(interval=1.0, shape=48.0)
        small = run_ethereum(
            uniform_contract_workload(20, 0, seed=4),
            miner_count=4,
            config=SimulationConfig(timing=timing, seed=5),
        )
        large = run_ethereum(
            uniform_contract_workload(200, 0, seed=4),
            miner_count=4,
            config=SimulationConfig(timing=timing, seed=5),
        )
        assert large.makespan / small.makespan == pytest.approx(10.0, rel=0.35)

    def test_retargeting_makes_miners_irrelevant(self):
        """The Table I plateau: with the difficulty floor active, more
        miners do not speed up serialized confirmation."""
        timing = TimingModel.low_variance(interval=1.0, shape=48.0)
        txs = uniform_contract_workload(100, 0, seed=6)
        few = run_ethereum(txs, 2, SimulationConfig(timing=timing, seed=7))
        many = run_ethereum(txs, 9, SimulationConfig(timing=timing, seed=7))
        assert many.makespan == pytest.approx(few.makespan, rel=0.3)

    def test_no_empty_blocks_until_drain(self):
        txs = uniform_contract_workload(40, 0, seed=8)
        result = run_ethereum(txs, 3, SimulationConfig(seed=9))
        assert result.total_empty_blocks == 0
