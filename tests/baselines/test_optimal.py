"""Tests for repro.baselines.optimal."""

import pytest

from repro.baselines.optimal import (
    optimal_distinct_set_count,
    optimal_new_shard_count,
)
from repro.errors import MergingError, SelectionError


class TestOptimalNewShards:
    def test_exact_division(self):
        assert optimal_new_shard_count([5, 5, 5, 5], lower_bound=10) == 2

    def test_floor_division(self):
        assert optimal_new_shard_count([5, 5, 5], lower_bound=10) == 1

    def test_below_bound(self):
        assert optimal_new_shard_count([3, 3], lower_bound=10) == 0

    def test_empty(self):
        assert optimal_new_shard_count([], lower_bound=10) == 0

    def test_invalid_inputs(self):
        with pytest.raises(MergingError):
            optimal_new_shard_count([1], lower_bound=0)
        with pytest.raises(MergingError):
            optimal_new_shard_count([-1], lower_bound=10)


class TestOptimalDistinctSets:
    def test_miner_bound(self):
        assert optimal_distinct_set_count(5, tx_count=100, capacity=1) == 5

    def test_tx_bound(self):
        assert optimal_distinct_set_count(100, tx_count=30, capacity=10) == 3

    def test_zero_txs(self):
        assert optimal_distinct_set_count(5, tx_count=0) == 0

    def test_invalid_inputs(self):
        with pytest.raises(SelectionError):
            optimal_distinct_set_count(-1, 10)
        with pytest.raises(SelectionError):
            optimal_distinct_set_count(1, 10, capacity=0)
