"""Tests for repro.baselines.random_merge."""

import pytest

from repro.baselines.random_merge import RandomizedMerging
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.errors import MergingError

CONFIG = MergingGameConfig(shard_reward=10.0, lower_bound=10)


def players_of(sizes):
    return [ShardPlayer(i, s, 2.0) for i, s in enumerate(sizes, start=1)]


class TestRandomizedMerging:
    def test_formed_shards_satisfy_bound(self):
        result = RandomizedMerging(CONFIG, seed=1).run(players_of([5] * 10))
        assert all(size >= CONFIG.lower_bound for size in result.new_shard_sizes)

    def test_members_disjoint(self):
        result = RandomizedMerging(CONFIG, seed=2).run(players_of([5] * 10))
        seen = set()
        for members in result.new_shard_members:
            assert not (set(members) & seen)
            seen |= set(members)

    def test_size_conservation(self):
        players = players_of([3, 8, 5, 6, 9, 2])
        result = RandomizedMerging(CONFIG, seed=3).run(players)
        total = sum(result.new_shard_sizes) + sum(
            p.size for p in result.leftover_players
        )
        assert total == sum(p.size for p in players)

    def test_deterministic_under_seed(self):
        a = RandomizedMerging(CONFIG, seed=4).run(players_of([5] * 8))
        b = RandomizedMerging(CONFIG, seed=4).run(players_of([5] * 8))
        assert a.new_shard_sizes == b.new_shard_sizes

    def test_too_small_population_does_nothing(self):
        result = RandomizedMerging(CONFIG, seed=5).run(players_of([3]))
        assert result.new_shard_count == 0

    def test_invalid_probability(self):
        with pytest.raises(MergingError):
            RandomizedMerging(CONFIG, probability=0.0)
        with pytest.raises(MergingError):
            RandomizedMerging(CONFIG, probability=1.0)

    def test_more_attempts_form_more_shards(self):
        """The retry budget is the strength knob of the baseline."""
        import statistics

        def mean_count(attempts):
            counts = []
            for seed in range(40):
                merging = RandomizedMerging(
                    CONFIG, seed=seed, max_attempts_per_round=attempts
                )
                counts.append(merging.run(players_of([5] * 8)).new_shard_count)
            return statistics.mean(counts)

        assert mean_count(16) >= mean_count(1)

    def test_oversized_shards_typical(self):
        """Coin flips lump ~half the population together, overshooting L
        — the inefficiency that costs the baseline shard count."""
        result = RandomizedMerging(CONFIG, seed=7).run(players_of([5] * 12))
        if result.new_shard_sizes:
            assert max(result.new_shard_sizes) > CONFIG.lower_bound
