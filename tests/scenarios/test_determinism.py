"""Scenario determinism: (scenario, seed) pins the trace on both engines.

Satellite 3 of the adversarial-suite PR. Same (scenario, seed) must
yield bit-identical trace digests in-process and across the fast and
frozen-legacy engines; different seeds must vary the metrics while the
report schema stays fixed.
"""

import pytest

from repro.scenarios import DetectionReport, get_scenario, run_scenario, scenario_names

#: Cheap-but-representative subset for the per-scenario parity sweep.
#: ("takeover" exercises behaviors + run_to_horizon, "double-spend" the
#: vanilla path, "eclipse" fault plans + probes.)
PARITY_SCENARIOS = ["takeover", "double-spend", "eclipse"]


@pytest.mark.parametrize("name", scenario_names())
def test_same_seed_same_digest_fast(name):
    first = run_scenario(get_scenario(name), seed=1)
    second = run_scenario(get_scenario(name), seed=1)
    assert first.digest == second.digest
    assert first.report == second.report


@pytest.mark.parametrize("name", PARITY_SCENARIOS)
def test_fast_legacy_digest_parity(name):
    fast = run_scenario(get_scenario(name), seed=0, engine="fast")
    legacy = run_scenario(get_scenario(name), seed=0, engine="legacy")
    assert fast.digest == legacy.digest
    fast_dict = fast.report.as_dict()
    legacy_dict = legacy.report.as_dict()
    assert fast_dict.pop("engine") == "fast"
    assert legacy_dict.pop("engine") == "legacy"
    # Identical runs must yield identical detection verdicts.
    assert fast_dict == legacy_dict


@pytest.mark.parametrize("name", scenario_names())
def test_different_seeds_vary_metrics_not_schema(name):
    a = run_scenario(get_scenario(name), seed=0)
    b = run_scenario(get_scenario(name), seed=2)
    assert a.digest != b.digest
    # Schema stability: same core keys, same extras keys, per scenario.
    a_dict, b_dict = a.report.as_dict(), b.report.as_dict()
    assert set(a_dict) == set(b_dict) == set(DetectionReport.core_keys()) | {"extras"}
    assert set(a_dict["extras"]) == set(b_dict["extras"])


def test_takeover_seeds_change_time_to_detect():
    a = run_scenario(get_scenario("takeover"), seed=0)
    b = run_scenario(get_scenario("takeover"), seed=2)
    assert a.report.time_to_detect != b.report.time_to_detect
    # Both seeds still reach the same verdict at the default coalition.
    assert a.report.safety_violated and b.report.safety_violated
