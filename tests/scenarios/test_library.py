"""Each library attack demonstrably works and is detected.

These run the real engine end to end: adversarial blocks pay latency,
face validation, and race honest chains. The assertions pin both sides
of every scenario — the attack does damage (or is structurally blocked)
AND the detection metrics see it.
"""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    SCENARIOS,
    get_scenario,
    run_scenario,
    scenario_names,
)

SEED = 0


class TestRegistry:
    def test_five_scenarios_registered(self):
        assert scenario_names() == [
            "adaptive",
            "double-spend",
            "eclipse",
            "griefing",
            "takeover",
        ]
        assert set(SCENARIOS) == set(scenario_names())

    def test_unknown_scenario_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario 'bogus'"):
            get_scenario("bogus")

    def test_descriptions_carry_paper_refs(self):
        for name in scenario_names():
            scenario = get_scenario(name)
            assert scenario.summary
            assert scenario.paper_ref
            assert name in scenario.describe()


class TestTakeover:
    def test_majority_coalition_corrupts_the_shard(self):
        outcome = run_scenario(get_scenario("takeover"), seed=SEED)
        report = outcome.report
        assert report.safety_violated
        assert report.detected
        # Honest confirmations were reorged away by the empty fork...
        assert report.txs_reverted > 0
        assert report.time_to_detect is not None
        # ...and at the horizon the shard confirms nothing at all.
        assert report.txs_censored == len(outcome.run.transactions)
        assert report.confirmed == 0
        # The coalition fork dominates the honest canonical view (honest
        # miners end up extending it, which is the takeover succeeding).
        assert report.extra("adversary_canonical_share") > 0.5
        assert report.extra("fork_depth") > 0

    def test_minority_coalition_stays_safe(self):
        outcome = run_scenario(get_scenario("takeover", adversaries=3), seed=SEED)
        report = outcome.report
        assert not report.safety_violated
        assert report.txs_censored == 0
        assert report.confirmed == len(outcome.run.transactions)
        assert report.extra("adversary_canonical_share") < 0.5

    def test_more_adversaries_than_miners_rejected(self):
        with pytest.raises(ScenarioError, match="adversaries <= miners"):
            get_scenario("takeover", miners=5, adversaries=6)


class TestDoubleSpend:
    def test_maxshard_serializes_every_pair(self):
        outcome = run_scenario(get_scenario("double-spend"), seed=SEED)
        report = outcome.report
        # Structural safety: no pair ever double-confirms...
        assert not report.safety_violated
        assert report.extra("both_confirmed_pairs") == 0
        # ...and the losing twin of every pair is blocked for good.
        assert report.detected
        assert report.extra("blocked_pairs") == len(outcome.run.notes["pairs"])
        assert report.extra("undecided_pairs") == 0
        assert report.time_to_detect is not None
        confirmed = outcome.honest_confirmed_indexes()
        for a, b in outcome.run.notes["pairs"]:
            assert (a in confirmed) + (b in confirmed) == 1


class TestGriefing:
    def test_liar_blocks_rejected_and_detected(self):
        outcome = run_scenario(get_scenario("griefing"), seed=SEED)
        report = outcome.report
        assert report.detected
        assert report.blocks_rejected > 0
        assert report.time_to_detect is not None
        # Replay rejection keeps safety intact in the honest view...
        assert not report.safety_violated
        # ...but the liars' assigned sets go unserved (the griefing).
        assert report.txs_censored > 0
        assert report.extra("spam_confirmed") > 0
        assert report.extra("liar_blocks_mined") > 0
        # The rejected blocks are precisely the deviating ones: while
        # the selection game is contested the liars' greedy picks clash
        # with the assigned sets and honest replay throws them out (the
        # 28-odd rejections above); once the mempool drains, liar blocks
        # are empty, replay-clean, and allowed to extend the chain — so
        # the censorship of the liars' assigned sets is the lasting harm.
        assert report.extra("honest_confirmed") < len(
            outcome.run.notes["honest_idx"]
        )


class TestEclipse:
    def test_victim_lags_then_recovers(self):
        outcome = run_scenario(get_scenario("eclipse"), seed=SEED)
        report = outcome.report
        heal_at = outcome.run.notes["heal_at"]
        assert report.detected
        assert report.time_to_detect is not None
        assert report.time_to_detect < heal_at
        assert report.extra("max_lag") >= 3
        assert report.extra("lag_at_heal") >= 3
        # After the partition heals, retransmission re-gossips the chain
        # and the victim converges back onto its shard's canonical view.
        assert report.extra("recovered")
        assert report.extra("final_lag") <= 1
        assert report.extra("time_to_recover") is not None
        assert report.extra("time_to_recover") > heal_at
        # Eclipse-lite is a liveness attack here: nothing is censored in
        # the victim's shard by the end of the run.
        assert report.txs_censored == 0

    def test_coalition_sits_outside_the_victims_shard(self):
        run = get_scenario("eclipse").build(SEED)
        for public in run.adversaries:
            assert run.assignment.shard_of[public] != run.victim_shard
        assert run.assignment.shard_of[run.victim_node] == run.victim_shard


class TestAdaptive:
    def test_grinding_overwhelms_the_smallest_shard(self):
        outcome = run_scenario(get_scenario("adaptive"), seed=SEED)
        report = outcome.report
        run = outcome.run
        # Every ground identity verifiably drew the target shard...
        for public in run.adversaries:
            assert run.assignment.shard_of[public] == run.victim_shard
        # ...forming a local majority from a global minority.
        members = run.assignment.members_of(run.victim_shard)
        in_target = sum(1 for pub in members if pub in run.adversaries)
        assert in_target > len(members) - in_target
        assert report.adversary_share < 0.5
        # The small shard's whole workload is censored.
        assert report.safety_violated
        assert report.txs_censored == report.extra("target_txs")
        # The composition audit flags the stacked shard immediately.
        assert report.detected
        assert report.extra("p_value") < 0.01
        assert report.time_to_detect == 0.0

    def test_honest_draws_unchanged_by_grinding(self):
        scenario = get_scenario("adaptive")
        run = scenario.build(SEED)
        honest = [m for m in run.miners if m.public not in run.adversaries]
        in_target = sum(
            1
            for m in honest
            if run.assignment.shard_of[m.public] == run.victim_shard
        )
        assert in_target == run.notes["honest_in_target"]
