"""Empirical Fig. 1d overlay: engine-level takeover runs vs Eq. 3.

The acceptance test of the adversarial-suite PR: at three (miners,
adversary-fraction) grid points the empirical shard-corruption rate
measured from full engine runs must match the Eq. 3 closed form within
binomial-confidence tolerance.
"""

import pytest

from repro.core.security import shard_corruption_probability
from repro.errors import ScenarioError
from repro.scenarios import DEFAULT_POINTS, render_sweep, takeover_corruption_sweep

#: Module-scope sweep so the ~12s of engine runs are paid once.
TRIALS = 60


@pytest.fixture(scope="module")
def sweep():
    return takeover_corruption_sweep(
        points=DEFAULT_POINTS, trials=TRIALS, seed=0, horizon=50.0
    )


def test_three_points_within_binomial_tolerance(sweep):
    assert len(sweep) == len(DEFAULT_POINTS) >= 3
    for point in sweep:
        assert point.trials == TRIALS
        assert point.engine_trials > 0, "sweep must exercise the engine"
        assert point.within_tolerance, (
            f"m={point.miners} f={point.adversary_fraction}: empirical "
            f"{point.empirical:.4f} vs Eq.3 {point.analytical:.4f} "
            f"(|z|={abs(point.z):.2f}, tol={point.tolerance:.4f})"
        )


def test_analytical_column_is_eq3(sweep):
    for point in sweep:
        assert point.analytical == pytest.approx(
            shard_corruption_probability(point.miners, point.adversary_fraction)
        )
        assert point.empirical_safety == pytest.approx(1.0 - point.empirical)
        assert point.analytical_safety == pytest.approx(1.0 - point.analytical)


def test_corruption_grows_with_adversary_fraction(sweep):
    # Fig. 1d shape: the rightmost grid point (f=0.45) corrupts far more
    # often than the leftmost (f=0.18).
    assert sweep[-1].empirical > sweep[0].empirical


def test_zero_fraction_skips_the_engine():
    (point,) = takeover_corruption_sweep(points=((7, 0.0),), trials=10, seed=0)
    assert point.empirical == 0.0
    assert point.engine_trials == 0  # an empty coalition cannot corrupt
    assert point.within_tolerance


def test_invalid_points_rejected():
    with pytest.raises(ScenarioError, match=r"\[0, 1\)"):
        takeover_corruption_sweep(points=((7, 1.5),), trials=10)
    with pytest.raises(ScenarioError, match=r"\[0, 1\)"):
        takeover_corruption_sweep(points=((7, 1.0),), trials=10)
    with pytest.raises(ScenarioError):
        takeover_corruption_sweep(points=((0, 0.3),), trials=10)
    with pytest.raises(ScenarioError):
        takeover_corruption_sweep(points=((7, 0.3),), trials=0)


def test_render_sweep_table(sweep):
    table = render_sweep(sweep)
    for point in sweep:
        assert str(point.miners) in table
    assert "empirical" in table and "analytical" in table and "Eq. 3" in table
