"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.chain.contract import SmartContract
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction, TransactionKind
from repro.consensus.miner import MinerIdentity
from repro.crypto.keys import KeyPair


CONTRACT_A = "0xc" + "a" * 39
CONTRACT_B = "0xc" + "b" * 39


@pytest.fixture
def keypair() -> KeyPair:
    return KeyPair.from_seed("test-keypair")


@pytest.fixture
def miners() -> list[MinerIdentity]:
    return [MinerIdentity.create(f"miner-{i}") for i in range(9)]


@pytest.fixture
def world() -> WorldState:
    """A world with two funded users and two unconditional contracts."""
    state = WorldState()
    state.create_account("0xualice", balance=1_000)
    state.create_account("0xubob", balance=1_000)
    state.deploy_contract(SmartContract.unconditional(CONTRACT_A, "0xudest-a"))
    state.deploy_contract(SmartContract.unconditional(CONTRACT_B, "0xudest-b"))
    return state


def make_call(
    sender: str,
    contract: str = CONTRACT_A,
    fee: int = 5,
    amount: int = 1,
    nonce: int = 0,
) -> Transaction:
    """A contract-call transaction with explicit fields."""
    return Transaction(
        sender=sender,
        recipient=contract,
        amount=amount,
        fee=fee,
        kind=TransactionKind.CONTRACT_CALL,
        contract=contract,
        nonce=nonce,
    )


def make_transfer(
    sender: str, recipient: str, fee: int = 5, amount: int = 1, nonce: int = 0
) -> Transaction:
    """A direct user-to-user transfer."""
    return Transaction(
        sender=sender,
        recipient=recipient,
        amount=amount,
        fee=fee,
        kind=TransactionKind.DIRECT_TRANSFER,
        nonce=nonce,
    )
