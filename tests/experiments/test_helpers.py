"""Unit tests for per-experiment helper functions."""

import pytest

from repro.experiments.fig3a import measure_improvement as fig3a_point
from repro.experiments.fig3h import measure_improvement as fig3h_point
from repro.experiments.fig4b import our_communication_times
from repro.experiments.fig4c import measure_unification_messages
from repro.experiments.fig5a import measure_point as fig5a_point
from repro.experiments.fig5b import measure_point as fig5b_point


class TestFig3aHelper:
    def test_single_shard_is_baseline(self):
        improvement = fig3a_point(shard_count=1, run_seed=1, total_txs=60)
        assert improvement == pytest.approx(1.0, abs=0.3)

    def test_more_shards_more_improvement(self):
        one = fig3a_point(shard_count=1, run_seed=2, total_txs=120)
        six = fig3a_point(shard_count=6, run_seed=2, total_txs=120)
        assert six > 2 * one


class TestFig3hHelper:
    def test_single_miner_is_baseline(self):
        improvement = fig3h_point(miners=1, run_seed=3, total_txs=60)
        assert improvement == pytest.approx(1.0, abs=0.35)

    def test_miners_add_parallelism(self):
        solo = fig3h_point(miners=1, run_seed=4, total_txs=100)
        six = fig3h_point(miners=6, run_seed=4, total_txs=100)
        assert six > 1.5 * solo


class TestFig4bHelper:
    def test_zero_volume_zero_messages(self):
        assert our_communication_times(0, seed=5) == 0.0

    def test_positive_volume_still_zero(self):
        """The checked claim: multi-input txs stay in the MaxShard."""
        assert our_communication_times(200, seed=6) == 0.0


class TestFig4cHelper:
    def test_two_messages_per_shard(self):
        for shards in (1, 4, 9):
            assert measure_unification_messages(shards, seed=7) == 2.0


class TestFig5Helpers:
    def test_fig5a_point_bounds(self):
        ours, optimal = fig5a_point(small_shards=60, seed=8)
        assert 0 <= ours <= optimal

    def test_fig5b_point_bounds(self):
        ours, optimal = fig5b_point(miners=60, seed=9)
        assert 1 <= ours <= optimal == 60
