"""Tests for the experiment registry and base plumbing."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import experiment_ids, run_experiment
from repro.experiments.base import ExperimentResult, averaged


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        expected = {
            "table1",
            "fig1d",
            "fig3a",
            "fig3b",
            "fig3c",
            "fig3d",
            "fig3e",
            "fig3f",
            "fig3g",
            "fig3h",
            "fig4a",
            "fig4b",
            "fig4c",
            "fig5a",
            "fig5b",
            "security",
        }
        assert expected <= set(ids)

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("fig99")


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="x",
            title="t",
            rows=[{"a": 1, "b": 2.5}, {"a": 2, "b": 0.0001}],
            paper_claims={"claim": "value"},
            notes="note",
        )

    def test_column(self):
        assert self.make().column("a") == [1, 2]

    def test_missing_column(self):
        with pytest.raises(ExperimentError):
            self.make().column("zzz")

    def test_table_renders(self):
        table = self.make().to_table()
        assert "a" in table and "b" in table
        assert "1.000e-04" in table  # tiny floats in scientific notation

    def test_empty_table(self):
        empty = ExperimentResult(experiment_id="x", title="t")
        assert "no rows" in empty.to_table()

    def test_summary_lines(self):
        lines = self.make().summary_lines()
        assert any("claim" in line for line in lines)
        assert any("note" in line for line in lines)


class TestAveraged:
    def test_averages_over_seeds(self):
        values = averaged(lambda seed: float(seed % 3), repetitions=30, base_seed=1)
        assert 0.0 <= values <= 2.0

    def test_deterministic(self):
        measure = lambda seed: float(seed % 7)
        a = averaged(measure, 5, base_seed=3)
        b = averaged(measure, 5, base_seed=3)
        assert a == b

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ExperimentError):
            averaged(lambda seed: 0.0, repetitions=0, base_seed=1)
