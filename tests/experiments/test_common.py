"""Tests for repro.experiments.common helpers."""

import pytest

from repro.core.shard_formation import partition_transactions
from repro.experiments.common import (
    epoch_selection_assignments,
    merging_pipeline_once,
    specs_from_partition,
)
from repro.workloads.generators import single_shard_workload, uniform_contract_workload


class TestSpecsFromPartition:
    def test_skips_empty_shards(self):
        txs = uniform_contract_workload(30, 2, seed=1)
        partition = partition_transactions(txs)
        by_shard = dict(partition.by_shard)
        by_shard[99] = []  # an empty shard
        specs = specs_from_partition(by_shard)
        assert 99 not in {s.shard_id for s in specs}

    def test_include_empty(self):
        specs = specs_from_partition({1: [], 2: []}, include_empty=True)
        assert len(specs) == 2

    def test_miner_naming(self):
        txs = uniform_contract_workload(10, 1, seed=2)
        partition = partition_transactions(txs)
        specs = specs_from_partition(partition.by_shard, miners_per_shard=3)
        for spec in specs:
            assert len(spec.miners) == 3
            assert len(set(spec.miners)) == 3


class TestEpochSelectionAssignments:
    def test_assignment_is_complete_and_disjoint(self):
        txs = single_shard_workload(50, seed=3)
        miners = [f"m{i}" for i in range(5)]
        assignments = epoch_selection_assignments(txs, miners, capacity=5, seed=4)
        all_assigned = [tx_id for ids in assignments.values() for tx_id in ids]
        assert sorted(all_assigned) == sorted(tx.tx_id for tx in txs)
        assert len(all_assigned) == len(set(all_assigned))

    def test_every_miner_keyed(self):
        txs = single_shard_workload(10, seed=5)
        miners = [f"m{i}" for i in range(4)]
        assignments = epoch_selection_assignments(txs, miners, capacity=3, seed=6)
        assert set(assignments) == set(miners)

    def test_deterministic(self):
        txs = single_shard_workload(30, seed=7)
        miners = [f"m{i}" for i in range(3)]
        a = epoch_selection_assignments(txs, miners, capacity=4, seed=8)
        b = epoch_selection_assignments(txs, miners, capacity=4, seed=8)
        assert a == b

    def test_single_miner_gets_everything(self):
        txs = single_shard_workload(12, seed=9)
        assignments = epoch_selection_assignments(txs, ["solo"], capacity=5, seed=10)
        assert len(assignments["solo"]) == 12

    def test_more_miners_than_txs(self):
        txs = single_shard_workload(3, seed=11)
        miners = [f"m{i}" for i in range(6)]
        assignments = epoch_selection_assignments(txs, miners, capacity=2, seed=12)
        assigned = [tx_id for ids in assignments.values() for tx_id in ids]
        assert sorted(assigned) == sorted(tx.tx_id for tx in txs)


class TestMergingPipeline:
    def test_metrics_are_consistent(self):
        metrics = merging_pipeline_once(small_count=4, seed=42)
        assert metrics["improvement_before"] > 1.0
        assert metrics["improvement_after"] > 1.0
        assert metrics["empty_before"] >= 0.0
        assert metrics["new_shards_ours"] >= 0.0

    def test_sweep_leftovers_flag(self):
        swept = merging_pipeline_once(small_count=4, seed=43, sweep_leftovers=True)
        unswept = merging_pipeline_once(small_count=4, seed=43, sweep_leftovers=False)
        # Both complete; sweeping never leaves more idle small shards.
        assert swept["empty_after"] <= unswept["empty_after"] + 1.0
