"""Shape tests: each experiment reproduces the paper's qualitative claim.

These run every experiment in quick mode and assert the *direction* of
the paper's findings (who wins, how curves trend) with generous margins —
absolute values belong to the benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def results():
    cache = {}

    def get(eid):
        if eid not in cache:
            cache[eid] = run_experiment(eid, quick=True, seed=0)
        return cache[eid]

    return get


class TestTable1:
    def test_flattens_beyond_four_miners(self, results):
        times = results("table1").column("confirmation_time_s")
        # 2 miners are clearly slower than 4+; 4..7 are within noise.
        assert times[0] > 1.5 * times[2]
        later = times[2:]
        assert max(later) < 1.6 * min(later)


class TestFig1d:
    def test_safety_increases_with_shard_size(self, results):
        r = results("fig1d")
        for key in ("safety_25pct", "safety_33pct"):
            curve = r.column(key)
            assert curve[-1] >= curve[0]
            assert curve[-1] > 0.99

    def test_weaker_adversary_safer(self, results):
        r = results("fig1d")
        for s25, s33 in zip(r.column("safety_25pct"), r.column("safety_33pct")):
            assert s25 >= s33


class TestFig3a:
    def test_near_linear_scaling(self, results):
        improvements = results("fig3a").column("throughput_improvement")
        assert improvements[0] == pytest.approx(1.0, abs=0.35)
        assert improvements[-1] > 4.0  # large gain at 9 shards
        assert improvements[-1] > improvements[2] > improvements[0]


class TestFig3b:
    def test_empty_blocks_comparable_to_ethereum(self, results):
        r = results("fig3b")
        assert max(r.column("empty_blocks_ethereum")) <= 1.0
        assert max(r.column("empty_blocks_sharding")) <= 6.0


class TestMergingSweep:
    def test_fig3c_reduction(self, results):
        r = results("fig3c")
        before = sum(r.column("empty_before_merging"))
        after = sum(r.column("empty_after_merging"))
        assert after < 0.4 * before  # paper: 90% reduction

    def test_fig3d_modest_loss(self, results):
        r = results("fig3d")
        before = sum(r.column("improvement_before_merging"))
        after = sum(r.column("improvement_after_merging"))
        assert after > 0.6 * before  # paper: only 14% loss

    def test_fig3d_improvement_decreases_with_small_shards(self, results):
        curve = results("fig3d").column("improvement_before_merging")
        assert curve[0] > curve[-1]

    def test_fig3e_comparable_throughput(self, results):
        r = results("fig3e")
        ours = sum(r.column("improvement_ours"))
        rand = sum(r.column("improvement_random"))
        assert ours > 0.85 * rand  # ours at least comparable (paper: +11%)

    def test_fig3g_more_new_shards_than_random(self, results):
        r = results("fig3g")
        ours = sum(r.column("new_shards_ours"))
        rand = sum(r.column("new_shards_random"))
        assert ours > rand


class TestFig3h:
    def test_selection_improves_with_miners(self, results):
        curve = results("fig3h").column("throughput_improvement")
        assert curve[0] == pytest.approx(1.0, abs=0.35)
        assert curve[-1] > 2.0
        average = sum(curve) / len(curve)
        assert average > 2.0  # paper: 300% average


class TestFig4a:
    def test_both_scale(self, results):
        r = results("fig4a")
        ours = r.column("improvement_ours")
        chainspace = r.column("improvement_chainspace")
        assert ours[-1] > 4.0
        assert chainspace[-1] > 4.0
        # Ours is not worse than ChainSpace (within noise).
        assert ours[-1] > 0.8 * chainspace[-1]


class TestFig4b:
    def test_zero_vs_linear(self, results):
        r = results("fig4b")
        assert all(v == 0.0 for v in r.column("comm_ours"))
        chainspace = r.column("comm_chainspace")
        assert chainspace[0] == 0.0
        assert chainspace[-1] > 0.0
        # Linearity: last/mid ratio tracks the volume ratio.
        volumes = r.column("three_input_txs")
        assert chainspace[-1] / chainspace[1] == pytest.approx(
            volumes[-1] / volumes[1], rel=0.25
        )


class TestFig4c:
    def test_constant_two(self, results):
        r = results("fig4c")
        assert all(v == 2.0 for v in r.column("comm_times_per_shard"))


class TestFig5a:
    def test_near_optimal(self, results):
        r = results("fig5a")
        for ratio in r.column("fraction_of_optimal"):
            assert 0.6 <= ratio <= 1.0


class TestFig5b:
    def test_half_of_optimal(self, results):
        r = results("fig5b")
        for ratio in r.column("fraction_of_optimal"):
            assert 0.3 <= ratio <= 0.8  # paper: ~50%


class TestSecurityNumbers:
    def test_paper_orders_of_magnitude(self, results):
        rows = results("security").rows
        at_25 = next(row for row in rows if row["adversary"] == 0.25)
        assert at_25["eq3_merging_failure"] < 1e-4
        assert at_25["eq6_selection_corruption"] < 1e-5
