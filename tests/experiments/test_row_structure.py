"""Structural tests: every experiment's rows match its paper artifact.

Cheap invariants on x-axis ranges and column sets, so a refactor cannot
silently change what an experiment sweeps.
"""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def quick():
    cache = {}

    def get(eid):
        if eid not in cache:
            cache[eid] = run_experiment(eid, quick=True, seed=0)
        return cache[eid]

    return get


class TestAxes:
    def test_table1_sweeps_2_to_7_miners(self, quick):
        assert quick("table1").column("miners") == [2, 3, 4, 5, 6, 7]

    def test_fig1d_starts_at_20_miners(self, quick):
        miners = quick("fig1d").column("miners")
        assert miners[0] == 20
        assert miners[-1] <= 100

    def test_fig3a_sweeps_1_to_9_shards(self, quick):
        assert quick("fig3a").column("shards") == list(range(1, 10))

    def test_fig3b_matches_fig3a_axis(self, quick):
        assert quick("fig3b").column("shards") == quick("fig3a").column("shards")

    def test_merging_figs_sweep_2_to_7_small_shards(self, quick):
        for eid in ("fig3c", "fig3d", "fig3e", "fig3f", "fig3g"):
            assert quick(eid).column("small_shards") == list(range(2, 8)), eid

    def test_fig3h_sweeps_1_to_9_miners(self, quick):
        assert quick("fig3h").column("miners") == list(range(1, 10))

    def test_fig4b_starts_at_zero(self, quick):
        volumes = quick("fig4b").column("three_input_txs")
        assert volumes[0] == 0
        assert volumes == sorted(volumes)

    def test_fig4c_sweeps_0_to_6_small_shards(self, quick):
        assert quick("fig4c").column("small_shards") == list(range(0, 7))

    def test_fig5_axes_increase(self, quick):
        for eid, key in (("fig5a", "small_shards"), ("fig5b", "miners")):
            axis = quick(eid).column(key)
            assert axis == sorted(axis) and len(axis) >= 3, eid

    def test_security_covers_both_adversaries(self, quick):
        assert quick("security").column("adversary") == [0.25, 0.33]


class TestColumns:
    def test_every_result_has_uniform_rows(self, quick):
        from repro.experiments import experiment_ids

        for eid in experiment_ids():
            result = quick(eid)
            keys = set(result.rows[0])
            for row in result.rows:
                assert set(row) == keys, eid

    def test_paper_claims_present_everywhere(self, quick):
        from repro.experiments import experiment_ids

        for eid in experiment_ids():
            assert quick(eid).paper_claims, eid
