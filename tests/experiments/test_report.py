"""Tests for repro.experiments.report and the report CLI."""

import pytest

from repro.__main__ import main
from repro.experiments import run_experiment
from repro.experiments.base import ExperimentResult
from repro.experiments.report import generate_report, render_result


class TestRenderResult:
    def test_renders_claims_and_rows(self):
        result = run_experiment("fig4c", quick=True)
        section = render_result(result)
        assert section.startswith("## fig4c")
        assert "Paper claims" in section
        assert "| small_shards |" in section

    def test_renders_notes_as_quote(self):
        result = ExperimentResult(
            experiment_id="x", title="t", rows=[{"a": 1}], notes="careful"
        )
        assert "> careful" in render_result(result)

    def test_empty_rows(self):
        result = ExperimentResult(experiment_id="x", title="t")
        assert "(no rows)" in render_result(result)

    def test_small_floats_scientific(self):
        result = ExperimentResult(
            experiment_id="x", title="t", rows=[{"p": 3e-6}]
        )
        assert "3.000e-06" in render_result(result)


class TestGenerateReport:
    def test_subset_report(self):
        report = generate_report(ids=["fig4c", "fig1d"], quick=True)
        assert "## fig4c" in report
        assert "## fig1d" in report
        assert "## fig3a" not in report

    def test_header_mentions_mode(self):
        report = generate_report(ids=["fig4c"], quick=True)
        assert "quick sweep" in report


class TestReportCLI:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--only", "fig4c"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--only", "fig4c", "--output", str(target)]) == 0
        assert "## fig4c" in target.read_text()
        assert "written to" in capsys.readouterr().out

    def test_rejects_unknown_subset(self):
        with pytest.raises(SystemExit):
            main(["report", "--only", "fig99"])
