"""Tests for repro.sim.campaign."""

import pytest

from repro.consensus.miner import MinerIdentity
from repro.core.epoch import EpochManager
from repro.errors import SimulationError
from repro.sim.campaign import Campaign
from repro.workloads.generators import WorkloadBuilder


def traffic_batch(epoch: int, contracts: int = 3, per_contract: int = 15):
    builder = WorkloadBuilder(seed=500 + epoch)
    txs = []
    for c in range(1, contracts + 1):
        contract = f"0xc{c:039d}"
        for user in range(per_contract):
            txs.append(
                builder.contract_call(
                    f"0xu-e{epoch}-c{c}-{user}", contract, fee=1 + user % 7
                )
            )
    return txs


@pytest.fixture(scope="module")
def campaign_result():
    miners = [MinerIdentity.create(f"camp-{i}") for i in range(20)]
    campaign = Campaign(EpochManager(miners), base_seed=1)
    return campaign.run([traffic_batch(e) for e in range(3)])


class TestCampaign:
    def test_every_epoch_executed(self, campaign_result):
        assert [e.epoch_index for e in campaign_result.epochs] == [0, 1, 2]

    def test_conservation_per_epoch(self, campaign_result):
        for epoch in campaign_result.epochs:
            total_in = epoch.injected + epoch.carried_in
            assert (
                epoch.result.total_transactions + epoch.deferred_out == total_in
            )

    def test_deferred_transactions_carry_over(self, campaign_result):
        for previous, current in zip(
            campaign_result.epochs, campaign_result.epochs[1:]
        ):
            assert current.carried_in == previous.deferred_out

    def test_most_traffic_confirms(self, campaign_result):
        assert campaign_result.confirmation_rate() > 0.8

    def test_backlog_is_bounded(self, campaign_result):
        assert campaign_result.final_backlog < 45  # one epoch's traffic

    def test_randomness_rotates(self, campaign_result):
        seeds = {e.plan.randomness for e in campaign_result.epochs}
        assert len(seeds) == len(campaign_result.epochs)

    def test_empty_traffic_rejected(self):
        miners = [MinerIdentity.create("camp-solo")]
        with pytest.raises(SimulationError):
            Campaign(EpochManager(miners)).run([])

    def test_blank_epoch_skipped(self):
        miners = [MinerIdentity.create(f"camp2-{i}") for i in range(8)]
        campaign = Campaign(EpochManager(miners), base_seed=2)
        result = campaign.run([traffic_batch(0, contracts=2), []])
        # The empty epoch produced no outcome but didn't crash.
        assert len(result.epochs) == 1
