"""Tests for repro.sim.config."""

import random

import pytest

from repro.errors import ConfigError
from repro.sim.config import SimulationConfig, TimingModel


class TestTimingModel:
    def test_retargeted_interval_constant(self):
        timing = TimingModel(solo_interval=60.0, retarget_interval=60.0)
        assert timing.shard_interval(1) == 60.0
        assert timing.shard_interval(9) == 60.0

    def test_fixed_difficulty_pools_hashpower(self):
        timing = TimingModel(solo_interval=60.0, retarget_interval=None)
        assert timing.shard_interval(2) == 30.0

    def test_table1_calibration(self):
        timing = TimingModel.table1()
        assert timing.shard_interval(2) == pytest.approx(109.0)
        assert timing.shard_interval(4) == pytest.approx(56.0)
        assert timing.shard_interval(7) == pytest.approx(56.0)

    def test_lane_interval_ignores_retarget(self):
        timing = TimingModel(solo_interval=60.0, retarget_interval=60.0)
        assert timing.lane_interval(2) == 30.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TimingModel(solo_interval=0)
        with pytest.raises(ConfigError):
            TimingModel(retarget_interval=0)
        with pytest.raises(ConfigError):
            TimingModel(block_shape=0)
        with pytest.raises(ConfigError):
            TimingModel().shard_interval(0)
        with pytest.raises(ConfigError):
            TimingModel().lane_interval(0)

    def test_sample_interval_mean(self):
        timing = TimingModel.low_variance(interval=10.0, shape=12.0)
        rng = random.Random(1)
        samples = [timing.sample_interval(10.0, rng) for __ in range(4_000)]
        assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.05)

    def test_higher_shape_lower_variance(self):
        import statistics

        rng = random.Random(2)
        noisy = TimingModel(block_shape=1.0)
        steady = TimingModel(block_shape=48.0)
        sd_noisy = statistics.pstdev(
            noisy.sample_interval(10.0, rng) for __ in range(2_000)
        )
        sd_steady = statistics.pstdev(
            steady.sample_interval(10.0, rng) for __ in range(2_000)
        )
        assert sd_steady < sd_noisy / 3


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.block_capacity == 10
        assert config.window is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            SimulationConfig(block_capacity=0)
        with pytest.raises(ConfigError):
            SimulationConfig(window=0.0)
        with pytest.raises(ConfigError):
            SimulationConfig(max_events=0)
