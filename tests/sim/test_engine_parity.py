"""Engine parity: the fast protocol engine vs. the frozen legacy oracle.

The fast-path rewrite (tuple-keyed heap, broadcast fan-out with
pre-sampled latency vectors, incremental confirmed tracking, tip-delta
reorgs, cached fee-ranked mempool) must leave every seeded run
**bit-identical**. These tests hold that in three ways:

* same-seed trace-digest equality between the two engines, for clean,
  faulty, unified and unified-faulty runs;
* same-seed equality against the *recorded* baselines in
  ``seed_digests.json`` — so a silent draw-order change cannot slip
  through by breaking both engines the same way;
* targeted regressions for the RNG draw-order contract, scheduler
  compaction, and the tip-delta world-state against the
  replay-from-genesis oracle.
"""

import json
import pathlib
import random

import pytest

from repro.consensus.miner import MinerIdentity
from repro.faults.plan import FaultPlan
from repro.net.events import Scheduler
from repro.net.network import LatencyModel
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import uniform_contract_workload

SEED = 7
MINERS = 6
TXS = 40

BASELINES = json.loads(
    (pathlib.Path(__file__).parent / "seed_digests.json").read_text()
)

PROFILES = {
    "clean": {},
    "faulty": {"faulty": True},
    "unified": {"unified": True},
    "unified-faulty": {"unified": True, "faulty": True},
}


def _simulate(
    engine: str,
    unified: bool = False,
    faulty: bool = False,
    workload=None,
):
    identities = [MinerIdentity.create(f"m{i}") for i in range(MINERS)]
    if workload is None:
        # Note: tx ids embed a process-global serial, so two separately
        # generated same-seed workloads get *different* ids (while still
        # producing identical trace digests, which never embed ids).
        # Tests that compare confirmed-id sets must share one workload.
        workload = uniform_contract_workload(
            total_txs=TXS, contract_shards=3, seed=SEED
        )
    plan = (
        FaultPlan.lossy(0.08, duplicate_probability=0.05) if faulty else None
    )
    config = ProtocolConfig(
        seed=SEED,
        engine=engine,
        trace=True,
        max_duration=5000.0,
        fault_plan=plan,
        retransmit_interval=60.0 if faulty else None,
    )
    sim = ProtocolSimulation(identities, workload, config=config, unified=unified)
    result = sim.run()
    return sim, result


class TestEngineDigestParity:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_fast_and_legacy_digests_identical(self, profile):
        workload = uniform_contract_workload(
            total_txs=TXS, contract_shards=3, seed=SEED
        )
        __, fast = _simulate("fast", workload=workload, **PROFILES[profile])
        __, legacy = _simulate(
            "legacy", workload=workload, **PROFILES[profile]
        )
        assert fast.trace.digest() == legacy.trace.digest()
        assert fast.confirmed_tx_ids == legacy.confirmed_tx_ids

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_fast_engine_matches_recorded_baseline(self, profile):
        """The committed digest pins the draw order across PR history:
        a change that altered both engines identically would still pass
        pairwise parity, but not this."""
        __, result = _simulate("fast", **PROFILES[profile])
        assert result.trace.digest() == BASELINES[profile]

    def test_engines_fire_identical_event_counts(self):
        sim_fast, __ = _simulate("fast", faulty=True)
        sim_legacy, __ = _simulate("legacy", faulty=True)
        assert (
            sim_fast.scheduler.events_fired
            == sim_legacy.scheduler.events_fired
        )

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ProtocolConfig(engine="turbo")


class TestDrawOrderContract:
    """``sample_many`` must consume the exact stream of repeated
    ``sample`` calls — the contract the broadcast fast path rests on."""

    def test_sample_many_matches_sequential_samples(self):
        model = LatencyModel(base_seconds=0.05, jitter_seconds=0.03)
        a, b = random.Random(99), random.Random(99)
        assert model.sample_many(a, 17) == [model.sample(b) for __ in range(17)]
        # And the streams stay aligned afterwards.
        assert a.random() == b.random()

    def test_sample_many_zero_jitter_draws_nothing(self):
        model = LatencyModel(base_seconds=0.02, jitter_seconds=0.0)
        rng = random.Random(5)
        before = rng.getstate()
        assert model.sample_many(rng, 8) == [0.02] * 8
        assert rng.getstate() == before

    def test_sample_many_numpy_batch_bit_equal_to_scalar(self):
        """Counts at/above the numpy batching threshold must still be
        bit-identical to per-call sampling — IEEE multiply/add is
        elementwise identical, and digests depend on it."""
        from repro.net import network as network_mod

        threshold = network_mod._NUMPY_BATCH_MIN
        model = LatencyModel(base_seconds=0.05, jitter_seconds=0.03)
        for count in (threshold, threshold + 1, 4 * threshold + 3):
            a, b = random.Random(7), random.Random(7)
            batched = model.sample_many(a, count)
            scalar = [model.sample(b) for __ in range(count)]
            assert batched == scalar  # exact float equality, not approx
            assert a.random() == b.random()

    def test_sample_many_without_numpy_matches(self, monkeypatch):
        """The pure-Python fallback (numpy absent) is the same stream."""
        from repro.net import network as network_mod

        model = LatencyModel(base_seconds=0.05, jitter_seconds=0.03)
        a, b = random.Random(13), random.Random(13)
        with_np = model.sample_many(a, 64)
        monkeypatch.setattr(network_mod, "_np", None)
        without_np = model.sample_many(b, 64)
        assert with_np == without_np


class TestMiningPrefetchContract:
    """The prefetched uniform buffer must reproduce ``expovariate``'s
    exact draw values, including across a mid-stream retarget."""

    def test_prefetch_bit_equal_to_expovariate(self):
        from repro.consensus.pow import MiningProcess, PoWParameters

        params = PoWParameters.fast_confirmation()
        process = MiningProcess(params, hashrate_fraction=0.5, seed=21)
        reference = random.Random(21)
        interval = params.expected_interval(0.5)
        # Span several refills of the prefetch buffer.
        for __ in range(3 * MiningProcess.PREFETCH + 5):
            assert process.next_block_time() == reference.expovariate(
                1.0 / interval
            )

    def test_retarget_applies_from_next_draw(self):
        from repro.consensus.pow import MiningProcess, PoWParameters

        params = PoWParameters.one_block_per_minute()
        process = MiningProcess(params, hashrate_fraction=1.0, seed=3)
        reference = random.Random(3)
        for __ in range(5):
            assert process.next_block_time() == reference.expovariate(
                1.0 / params.expected_interval(1.0)
            )
        # Retarget mid-buffer: already-prefetched uniforms must be
        # re-scaled by the new interval, not served at the old one.
        process.retarget(0.25)
        for __ in range(5):
            assert process.next_block_time() == reference.expovariate(
                1.0 / params.expected_interval(0.25)
            )


class TestSchedulerCompaction:
    def test_mass_cancellation_triggers_compaction(self):
        scheduler = Scheduler()
        events = [scheduler.schedule_in(float(i + 1), lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        assert scheduler.compactions >= 1
        assert scheduler.pending == 50
        # The surviving events still fire in order.
        assert scheduler.run() == 200.0

    def test_small_heaps_never_compact(self):
        scheduler = Scheduler()
        events = [scheduler.schedule_in(float(i + 1), lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        assert scheduler.compactions == 0
        assert scheduler.pending == 0


class TestStateOracle:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_tip_delta_state_matches_replay_oracle(self, profile):
        """After a full run (reorgs included), every node's journaled
        world state must fingerprint identically to a from-scratch
        canonical replay."""
        sim, __ = _simulate("fast", **PROFILES[profile])
        for public in sorted(sim.assignment.shard_of):
            node = sim.node(public)
            assert (
                node.state.fingerprint() == node.state_oracle_fingerprint()
            ), f"state drift on node {public[:10]} in profile {profile}"

    def test_ledger_incremental_matches_scan(self):
        sim, __ = _simulate("fast", faulty=True)
        for public in sorted(sim.assignment.shard_of):
            ledger = sim.node(public).ledger
            assert ledger.confirmed_tx_ids() == ledger.confirmed_tx_ids_scan()
