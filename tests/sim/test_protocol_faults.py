"""Failure-hardened protocol runs: chaos, degradation, seed stability.

The acceptance scenario for the fault-injection layer: with seed-fixed
message loss and a mid-run crash, every shard still drains its relevant
transactions (retransmission + fallback), the result reports what was
injected, and a faulty leader's equivocation is detected and rejected.
"""

import pytest

from repro.consensus.miner import (
    AssignedSelectionBehavior,
    MinerIdentity,
    SoloFallbackBehavior,
)
from repro.consensus.pow import PoWParameters
from repro.faults.plan import (
    CrashEvent,
    FaultPlan,
    FaultyLeader,
    MessageFaults,
    Partition,
)
from repro.net.messages import MessageKind
from repro.net.network import LatencyModel
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import uniform_contract_workload

FAST_POW = PoWParameters(difficulty=0x40000 // 60)  # ~1 s solo blocks
LOW_LATENCY = LatencyModel(base_seconds=0.01, jitter_seconds=0.01)


def quick_config(**overrides):
    defaults = dict(
        pow_params=FAST_POW,
        latency=LOW_LATENCY,
        max_duration=2_000.0,
        seed=5,
    )
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


def make_inputs(n_miners=6, n_txs=24, tx_seed=3, prefix="flt"):
    miners = [MinerIdentity.create(f"{prefix}-{i}") for i in range(n_miners)]
    txs = uniform_contract_workload(
        total_txs=n_txs, contract_shards=2, seed=tx_seed
    )
    return miners, txs


def build(n_miners=6, n_txs=24, tx_seed=3, prefix="flt", **config_overrides):
    miners, txs = make_inputs(n_miners, n_txs, tx_seed, prefix)
    sim = ProtocolSimulation(miners, txs, config=quick_config(**config_overrides))
    return miners, txs, sim


class TestSeedStability:
    """Wiring the no-op fault layer must not move a single bit."""

    def _result_fields(self, result):
        return (
            result.duration,
            result.confirmed_tx_ids,
            result.blocks_rejected,
            result.rejection_reasons,
            result.per_shard_confirmed,
            dict(result.rewards.blocks_mined),
            dict(result.rewards.fee_income),
            dict(result.rewards.block_rewards),
            result.drops,
            result.retransmissions,
            result.fallbacks,
            result.equivocations_detected,
            result.fault_stats,
        )

    def test_default_fault_plan_is_byte_identical(self):
        # One workload, two wirings (tx ids carry a process-global serial,
        # so the transactions must be shared, not regenerated).
        miners, txs = make_inputs(prefix="proto")
        bare = ProtocolSimulation(miners, txs, config=quick_config())
        bare_result = bare.run()
        wired = ProtocolSimulation(
            miners, txs, config=quick_config(fault_plan=FaultPlan.none())
        )
        wired_result = wired.run()
        assert self._result_fields(bare_result) == self._result_fields(wired_result)

    def test_default_fault_plan_is_byte_identical_unified(self):
        miners = [MinerIdentity.create(f"unified-31-{i}") for i in range(8)]
        txs = uniform_contract_workload(total_txs=30, contract_shards=1, seed=31)

        def run_with(plan):
            config = quick_config(seed=31, max_duration=60.0, fault_plan=plan)
            sim = ProtocolSimulation(miners, txs, config=config, unified=True)
            return sim.run()

        assert self._result_fields(run_with(None)) == self._result_fields(
            run_with(FaultPlan.none())
        )

    def test_chaos_run_is_deterministic(self):
        miners, txs = make_inputs(prefix="proto")
        plan = FaultPlan.lossy(0.2)
        results = []
        for _ in range(2):
            sim = ProtocolSimulation(
                miners,
                txs,
                config=quick_config(fault_plan=plan, retransmit_interval=2.0),
            )
            results.append(sim.run())
        assert self._result_fields(results[0]) == self._result_fields(results[1])


class TestChaosDrain:
    """The acceptance scenario: loss + crash, yet every shard drains."""

    def test_drops_and_crash_still_drain(self):
        miners = [MinerIdentity.create(f"chaos-{i}") for i in range(6)]
        txs = uniform_contract_workload(total_txs=24, contract_shards=2, seed=3)
        crash_victim = miners[1].public
        plan = FaultPlan(
            default_message_faults=MessageFaults(drop_probability=0.2),
            crashes=(CrashEvent(crash_victim, at=3.0, recover_at=12.0),),
        )
        config = quick_config(fault_plan=plan, retransmit_interval=2.0)
        sim = ProtocolSimulation(miners, txs, config=config)
        result = sim.run()
        # Every transaction a populated shard is responsible for confirms
        # despite 20% loss and the mid-run crash...
        assert result.confirmed_tx_ids >= sim._relevant_tx_ids()
        assert result.duration < config.max_duration
        # ...and the result reports the injected faults and the repairs.
        assert result.drops > 0
        assert result.retransmissions > 0
        assert result.fault_stats.crash_drops >= 0

    def test_partition_heals_and_drains(self):
        miners = [MinerIdentity.create(f"part-{i}") for i in range(6)]
        txs = uniform_contract_workload(total_txs=24, contract_shards=2, seed=3)
        plan = FaultPlan(
            partitions=(
                Partition(
                    members=tuple(m.public for m in miners[:3]),
                    starts_at=0.0,
                    heals_at=8.0,
                ),
            ),
        )
        config = quick_config(fault_plan=plan, retransmit_interval=2.0)
        sim = ProtocolSimulation(miners, txs, config=config)
        result = sim.run()
        assert result.confirmed_tx_ids >= sim._relevant_tx_ids()
        assert result.fault_stats.partition_drops > 0

    def test_heavier_loss_degrades_but_does_not_stall(self):
        __, __, sim = build(
            prefix="heavy",
            fault_plan=FaultPlan.lossy(0.5),
            retransmit_interval=2.0,
        )
        result = sim.run()
        assert result.confirmed_tx_ids >= sim._relevant_tx_ids()
        assert result.drops > result.fault_stats.duplicates  # loss dominated


class TestFaultyLeader:
    """Withholding and equivocating leaders during parameter unification."""

    def _build_unified(self, mode, n_miners=8, seed=31):
        miners = [MinerIdentity.create(f"fl-{mode}-{i}") for i in range(n_miners)]
        txs = uniform_contract_workload(total_txs=30, contract_shards=1, seed=seed)
        plan = FaultPlan(leader=FaultyLeader(mode))
        config = quick_config(
            seed=seed,
            max_duration=120.0,
            fault_plan=plan,
            leader_timeout=5.0,
            retransmit_interval=2.0,
        )
        sim = ProtocolSimulation(miners, txs, config=config, unified=True)
        return miners, sim

    def test_withholding_leader_triggers_network_wide_fallback(self):
        miners, sim = self._build_unified("withhold")
        result = sim.run()
        # Nobody received a packet; every miner degraded to solo mining
        # instead of stalling, and the shard kept confirming.
        assert result.fallbacks == len(miners)
        assert result.confirmed_count() > 0
        assert all(
            isinstance(sim.node(m.public).behavior, SoloFallbackBehavior)
            for m in miners
        )
        assert not any(sim.node(m.public).has_unified_replay for m in miners)

    def test_equivocation_detected_and_rejected_by_all_honest_nodes(self):
        miners, sim = self._build_unified("equivocate")
        leader = sim.assignment.leader_public
        result = sim.run()
        honest = [m.public for m in miners if m.public != leader]
        # Every honest node received the tampered packet, checked its
        # digest against the public commitment, and rejected it.
        assert result.equivocations_detected == len(honest)
        for public in honest:
            node = sim.node(public)
            assert node.stats.packets_rejected == 1
            assert not node.has_unified_replay
        # The equivocator kept the canonical packet for herself.
        assert sim.node(leader).has_unified_replay
        # Rejection did not stall the run: honest miners fell back.
        assert result.fallbacks == len(honest)
        assert result.confirmed_count() > 0

    def test_honest_leader_under_loss_recovers_via_retransmission(self):
        miners = [MinerIdentity.create(f"fl-loss-{i}") for i in range(8)]
        txs = uniform_contract_workload(total_txs=30, contract_shards=1, seed=31)
        # Only the leader broadcast is lossy here.
        plan = FaultPlan(
            message_faults=(
                (MessageKind.LEADER_BROADCAST, MessageFaults(drop_probability=0.6)),
            ),
        )
        config = quick_config(
            seed=31,
            max_duration=120.0,
            fault_plan=plan,
            leader_timeout=20.0,
            retransmit_interval=1.0,
        )
        sim = ProtocolSimulation(miners, txs, config=config, unified=True)
        result = sim.run()
        # Retransmissions beat the 60% loss well before the timeout: every
        # node ends up with the verified packet and nobody fell back.
        assert all(sim.node(m.public).has_unified_replay for m in miners)
        assert result.fallbacks == 0
        assert result.retransmissions > 0
        assert result.confirmed_count() > 0


class TestFractionsRegression:
    """Miner allocation must track transaction fractions (epsilon fix)."""

    def test_populated_shard_fractions_not_clamped(self):
        __, __, sim = build(prefix="frac")
        fractions = sim.assignment.fractions
        populated = [f for f in fractions.values() if f > 0.01]
        # Populated per-shard loads are percentages summing to ~100;
        # empty shards get only the 0.01 epsilon, not a flat 0.5 floor.
        assert sum(populated) == pytest.approx(100.0, abs=0.5)
        assert all(
            f == pytest.approx(0.01) for f in fractions.values() if f <= 0.01
        )

    def test_allocation_tracks_transaction_skew(self):
        from tests.conftest import make_call

        heavy, light = "0xcheavyfrac", "0xclightfrac"
        txs = [
            make_call(f"0xuh{i}", contract=heavy, fee=2) for i in range(36)
        ] + [
            make_call(f"0xul{i}", contract=light, fee=2) for i in range(4)
        ]
        miners = [MinerIdentity.create(f"skew-{i}") for i in range(40)]
        sim = ProtocolSimulation(miners, txs, config=quick_config())
        sizes = sim.assignment.shard_sizes()
        by_fraction = sorted(
            sim.assignment.fractions.items(), key=lambda kv: kv[1]
        )
        lightest_shard = by_fraction[0][0]
        heaviest_shard = by_fraction[-1][0]
        # A 90/10 workload split must show up in the miner allocation —
        # under the 0.5 clamp both shards drew near-equal counts.
        assert sizes[heaviest_shard] > 2 * sizes[lightest_shard]
