"""Tests for repro.sim.metrics."""

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import (
    mean_over_runs,
    summarize_empty_blocks,
    throughput_improvement,
)
from repro.sim.simulator import ShardOutcome, SimulationResult


def result_with(empty_counts: dict[int, int]) -> SimulationResult:
    shards = {
        sid: ShardOutcome(
            shard_id=sid,
            miner_count=1,
            tx_count=10,
            lane_count=1,
            empty_blocks=count,
        )
        for sid, count in empty_counts.items()
    }
    return SimulationResult(
        makespan=10.0,
        window_end=10.0,
        shards=shards,
        total_transactions=10 * len(shards),
        confirmed_transactions=10 * len(shards),
    )


class TestThroughputImprovement:
    def test_basic_ratio(self):
        assert throughput_improvement(720.0, 100.0) == pytest.approx(7.2)

    def test_invalid_times(self):
        with pytest.raises(SimulationError):
            throughput_improvement(0.0, 1.0)
        with pytest.raises(SimulationError):
            throughput_improvement(1.0, -1.0)


class TestEmptyBlockSummary:
    def test_totals(self):
        summary = summarize_empty_blocks(result_with({1: 4, 2: 6}))
        assert summary.total == 10
        assert summary.per_shard_mean == 5.0
        assert summary.per_shard_max == 6
        assert summary.shard_count == 2

    def test_subset_selection(self):
        summary = summarize_empty_blocks(
            result_with({1: 4, 2: 6, 3: 100}), shard_ids=[1, 2]
        )
        assert summary.total == 10

    def test_unknown_ids_rejected(self):
        """Unknown shard ids raise instead of being silently dropped — a
        typo'd id must not shrink the summary unnoticed."""
        with pytest.raises(SimulationError, match=r"unknown shard ids \[99\]"):
            summarize_empty_blocks(result_with({1: 4}), shard_ids=[1, 99])

    def test_unknown_ids_all_listed(self):
        with pytest.raises(SimulationError, match=r"\[7, 99\]"):
            summarize_empty_blocks(result_with({1: 4}), shard_ids=[99, 7])

    def test_empty_selection(self):
        summary = summarize_empty_blocks(result_with({}), shard_ids=[])
        assert summary.total == 0
        assert summary.per_shard_mean == 0.0


class TestMeanOverRuns:
    def test_mean(self):
        assert mean_over_runs([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            mean_over_runs([])
