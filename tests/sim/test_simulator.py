"""Tests for repro.sim.simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim.config import SimulationConfig, TimingModel
from repro.sim.simulator import ShardGroupSpec, ShardedSimulation
from repro.workloads.generators import single_shard_workload

FAST = TimingModel.low_variance(interval=1.0, shape=48.0)


def greedy_spec(shard_id, tx_count, miners=1, seed=0, start_delay=0.0):
    txs = single_shard_workload(tx_count, seed=seed + shard_id)
    return ShardGroupSpec(
        shard_id=shard_id,
        miners=tuple(f"s{shard_id}m{i}" for i in range(miners)),
        transactions=tuple(txs),
        start_delay=start_delay,
    )


class TestSpecValidation:
    def test_needs_miners(self):
        with pytest.raises(SimulationError):
            ShardGroupSpec(shard_id=1, miners=(), transactions=())

    def test_unknown_mode(self):
        with pytest.raises(SimulationError):
            ShardGroupSpec(shard_id=1, miners=("m",), transactions=(), mode="other")

    def test_assigned_needs_assignments(self):
        with pytest.raises(SimulationError):
            ShardGroupSpec(
                shard_id=1, miners=("m",), transactions=(), mode="assigned"
            )

    def test_negative_delay(self):
        with pytest.raises(SimulationError):
            ShardGroupSpec(
                shard_id=1, miners=("m",), transactions=(), start_delay=-1.0
            )

    def test_duplicate_shard_ids(self):
        with pytest.raises(SimulationError):
            ShardedSimulation([greedy_spec(1, 5), greedy_spec(1, 5)])

    def test_no_specs(self):
        with pytest.raises(SimulationError):
            ShardedSimulation([])


class TestGreedyRuns:
    def test_confirms_all(self):
        sim = ShardedSimulation(
            [greedy_spec(1, 25)], SimulationConfig(timing=FAST, seed=1)
        )
        result = sim.run()
        assert result.all_confirmed
        assert result.shards[1].confirmed == 25

    def test_makespan_tracks_blocks(self):
        """25 txs at capacity 10 -> 3 blocks of ~1s each."""
        sim = ShardedSimulation(
            [greedy_spec(1, 25)], SimulationConfig(timing=FAST, seed=2)
        )
        result = sim.run()
        assert result.makespan == pytest.approx(3.0, rel=0.4)

    def test_parallel_shards_faster_than_one(self):
        txs_per_shard = 30
        wide = ShardedSimulation(
            [greedy_spec(s, txs_per_shard) for s in range(1, 6)],
            SimulationConfig(timing=FAST, seed=3),
        ).run()
        tall = ShardedSimulation(
            [greedy_spec(1, txs_per_shard * 5)],
            SimulationConfig(timing=FAST, seed=3),
        ).run()
        assert wide.makespan < tall.makespan

    def test_stops_at_drain_without_window(self):
        sim = ShardedSimulation(
            [greedy_spec(1, 10), greedy_spec(2, 100)],
            SimulationConfig(timing=FAST, seed=4),
        )
        result = sim.run()
        # Shard 1 drained early and packed empty blocks until shard 2
        # finished — but none after.
        assert result.shards[1].empty_blocks > 0
        assert result.window_end == result.makespan

    def test_window_extends_measurement(self):
        config = SimulationConfig(timing=FAST, seed=5, window=50.0)
        result = ShardedSimulation([greedy_spec(1, 10)], config).run()
        assert result.window_end == 50.0
        assert result.shards[1].empty_blocks >= 30  # ~49 empty slots

    def test_start_delay_defers_first_block(self):
        config = SimulationConfig(timing=FAST, seed=6)
        delayed = ShardedSimulation(
            [greedy_spec(1, 10, start_delay=20.0)], config
        ).run()
        assert delayed.makespan > 20.0

    def test_empty_workload(self):
        spec = ShardGroupSpec(shard_id=1, miners=("m",), transactions=())
        result = ShardedSimulation([spec], SimulationConfig(timing=FAST)).run()
        assert result.all_confirmed
        assert result.makespan == 0.0

    def test_greedy_confirms_high_fees_first(self):
        txs = single_shard_workload(20, fees=list(range(1, 21)), seed=7)
        spec = ShardGroupSpec(shard_id=1, miners=("m",), transactions=tuple(txs))
        sim = ShardedSimulation([spec], SimulationConfig(timing=FAST, seed=8))
        process = None
        result = sim.run()
        assert result.all_confirmed  # fee ordering is covered in unit tests


class TestTracing:
    def test_trace_disabled_by_default(self):
        result = ShardedSimulation(
            [greedy_spec(1, 10)], SimulationConfig(timing=FAST, seed=20)
        ).run()
        assert result.trace == ()

    def test_trace_records_every_block(self):
        result = ShardedSimulation(
            [greedy_spec(1, 25)],
            SimulationConfig(timing=FAST, seed=21, trace=True),
        ).run()
        assert len(result.trace) == result.total_blocks
        assert sum(e.packed for e in result.trace) == 25
        times = [e.time for e in result.trace]
        assert times == sorted(times)

    def test_trace_marks_empty_blocks(self):
        result = ShardedSimulation(
            [greedy_spec(1, 5), greedy_spec(2, 80)],
            SimulationConfig(timing=FAST, seed=22, trace=True),
        ).run()
        empties = [e for e in result.trace if e.is_empty]
        assert len(empties) == result.total_empty_blocks
        assert all(e.shard_id == 1 for e in empties)


class TestAssignedRuns:
    def make_assigned(self, miners, tx_count, seed=0, assign_all=True):
        txs = single_shard_workload(tx_count, seed=seed)
        per_miner = tx_count // miners if assign_all else 2
        assignments = {}
        cursor = 0
        for i in range(miners):
            chunk = txs[cursor : cursor + per_miner]
            assignments[f"m{i}"] = tuple(tx.tx_id for tx in chunk)
            cursor += per_miner
        return ShardGroupSpec(
            shard_id=1,
            miners=tuple(f"m{i}" for i in range(miners)),
            transactions=tuple(txs),
            mode="assigned",
            assignments=assignments,
        )

    def test_distinct_sets_create_lanes(self):
        spec = self.make_assigned(miners=4, tx_count=40)
        result = ShardedSimulation([spec], SimulationConfig(timing=FAST, seed=9)).run()
        assert result.shards[1].lane_count == 4
        assert result.all_confirmed

    def test_parallel_lanes_beat_serial(self):
        assigned = self.make_assigned(miners=4, tx_count=40, seed=10)
        serial = greedy_spec(1, 40, miners=4, seed=10)
        fast = ShardedSimulation(
            [assigned], SimulationConfig(timing=FAST, seed=11)
        ).run()
        slow = ShardedSimulation(
            [serial], SimulationConfig(timing=FAST, seed=11)
        ).run()
        assert fast.makespan < slow.makespan

    def test_unassigned_txs_swept(self):
        """Transactions nobody selected still confirm via the sweeper lane."""
        spec = self.make_assigned(miners=2, tx_count=40, assign_all=False)
        result = ShardedSimulation(
            [spec], SimulationConfig(timing=FAST, seed=12)
        ).run()
        assert result.all_confirmed
        assert result.shards[1].lane_count == 3  # 2 assigned + sweeper

    def test_overlapping_sets_confirm_once(self):
        """Regression: two distinct sets sharing a transaction must not
        double-confirm it (the congestion game allows n_j > 1 choosers)."""
        txs = single_shard_workload(6, seed=99)
        ids = [tx.tx_id for tx in txs]
        spec = ShardGroupSpec(
            shard_id=1,
            miners=("m0", "m1"),
            transactions=tuple(txs),
            mode="assigned",
            assignments={
                "m0": tuple(ids[:4]),
                "m1": tuple(ids[2:]),  # overlaps on ids[2:4]
            },
        )
        result = ShardedSimulation(
            [spec], SimulationConfig(timing=FAST, seed=100)
        ).run()
        assert result.confirmed_transactions == 6
        assert result.total_transactions == 6

    def test_identical_sets_share_a_lane(self):
        txs = single_shard_workload(10, seed=13)
        ids = tuple(tx.tx_id for tx in txs)
        spec = ShardGroupSpec(
            shard_id=1,
            miners=("m0", "m1"),
            transactions=tuple(txs),
            mode="assigned",
            assignments={"m0": ids, "m1": ids},
        )
        result = ShardedSimulation(
            [spec], SimulationConfig(timing=FAST, seed=14)
        ).run()
        assert result.shards[1].lane_count == 1
