"""Scale optimizations (delivery waves + mining calendar) parity.

``ProtocolConfig.delivery_waves`` and ``mining_calendar`` default to
True; setting either to False keeps the pre-optimization per-event code
as a differential oracle. These tests hold the optimized engines to the
*recorded* ``seed_digests.json`` baselines with the optimizations
disabled (proving the oracle paths are still the historical stream) and
to bit-identical digests oracle-vs-optimized on the fast and
shard-parallel engines, list and paced-stream workloads alike — plus
the heap-footprint claim (``scheduler.peak_pending`` collapses under
waves + calendar).
"""

import json
import pathlib

import pytest

from repro.consensus.miner import MinerIdentity
from repro.consensus.pow import PoWParameters
from repro.faults.plan import FaultPlan
from repro.observe import Tracer
from repro.runtime.shard_workers import fork_available
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import (
    streaming_uniform_contract_workload,
    uniform_contract_workload,
)
from tests.sim.test_engine_parity import PROFILES

SEED = 7
MINERS = 6
TXS = 40

BASELINES = json.loads(
    (pathlib.Path(__file__).parent / "seed_digests.json").read_text()
)

ORACLE = {"delivery_waves": False, "mining_calendar": False}


def _simulate(
    engine,
    unified=False,
    faulty=False,
    workers=None,
    stream=False,
    paced=False,
    **options,
):
    identities = [MinerIdentity.create(f"m{i}") for i in range(MINERS)]
    if stream or paced:
        workload = streaming_uniform_contract_workload(
            total_txs=TXS, contract_shards=3, seed=SEED
        )
    else:
        workload = uniform_contract_workload(
            total_txs=TXS, contract_shards=3, seed=SEED
        )
    plan = (
        FaultPlan.lossy(0.08, duplicate_probability=0.05) if faulty else None
    )
    tracer = Tracer()
    config = ProtocolConfig(
        seed=SEED,
        engine=engine,
        shard_workers=workers,
        trace=tracer,
        max_duration=5000.0,
        fault_plan=plan,
        retransmit_interval=60.0 if faulty else None,
        pow_params=(
            PoWParameters.fast_confirmation()
            if paced
            else PoWParameters.one_block_per_minute()
        ),
        inject_batch=10 if paced else None,
        **options,
    )
    sim = ProtocolSimulation(identities, workload, config=config, unified=unified)
    result = sim.run()
    return sim, result, tracer.digest()


class TestOracleBaselineParity:
    """Waves and calendar off = the exact recorded historical stream."""

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_fast_oracle_matches_recorded_baseline(self, profile):
        __, __result, digest = _simulate("fast", **PROFILES[profile], **ORACLE)
        assert digest == BASELINES[profile]

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_shard_parallel_oracle_matches_recorded_baseline(self, profile):
        __, __result, digest = _simulate(
            "shard_parallel", **PROFILES[profile], **ORACLE
        )
        assert digest == BASELINES[profile]


class TestOptimizedVsOracle:
    """Each optimization alone, and both together, change nothing."""

    @pytest.mark.parametrize(
        "options",
        [
            {"delivery_waves": False},
            {"mining_calendar": False},
            {},
        ],
        ids=["calendar-only", "waves-only", "both"],
    )
    @pytest.mark.parametrize("engine", ["fast", "shard_parallel"])
    def test_digest_matches_oracle(self, engine, options):
        __, __r, oracle = _simulate(engine, **ORACLE)
        __, __r, optimized = _simulate(engine, **options)
        assert optimized == oracle == BASELINES["clean"]

    @pytest.mark.parametrize("engine", ["fast", "shard_parallel"])
    def test_faulty_digest_matches_oracle(self, engine):
        # Faulty sends take the per-event path; waves must still cover
        # the fault-free remainder without disturbing the stream.
        __, __r, oracle = _simulate(engine, faulty=True, **ORACLE)
        __, __r, optimized = _simulate(engine, faulty=True)
        assert optimized == oracle == BASELINES["faulty"]

    @pytest.mark.parametrize("engine", ["fast", "shard_parallel"])
    def test_paced_stream_digest_matches_oracle(self, engine):
        __, __r, oracle = _simulate(engine, paced=True, **ORACLE)
        __, __r, optimized = _simulate(engine, paced=True)
        assert optimized == oracle

    @pytest.mark.skipif(not fork_available(), reason="fork backend unavailable")
    def test_fork_backend_digest_matches_oracle(self):
        __, __r, oracle = _simulate("shard_parallel", workers=3, **ORACLE)
        __, __r, optimized = _simulate("shard_parallel", workers=3)
        assert optimized == oracle == BASELINES["clean"]


class TestHeapFootprint:
    def _simulate_wide(self, **options):
        # The footprint win scales with miner count (waves collapse the
        # N-1 broadcast fan-out, the calendar the N standing mining
        # events), so measure it on a wider shard than the parity runs.
        identities = [MinerIdentity.create(f"w{i}") for i in range(32)]
        workload = uniform_contract_workload(
            total_txs=60, contract_shards=3, seed=SEED
        )
        tracer = Tracer()
        config = ProtocolConfig(
            seed=SEED, trace=tracer, max_duration=2000.0, **options
        )
        sim = ProtocolSimulation(identities, workload, config=config)
        result = sim.run()
        return sim, result

    def test_peak_pending_collapses_under_optimizations(self):
        """The point of the PR: the physical heap high-water mark drops
        by an order of magnitude; the gauge and wall sidecar record it."""
        sim_oracle, __ = self._simulate_wide(**ORACLE)
        sim_opt, result_opt = self._simulate_wide()
        assert sim_opt.scheduler.peak_pending * 10 <= sim_oracle.scheduler.peak_pending

        record = result_opt.trace.records_named("run.complete")[0]
        assert record.wall["peak_pending"] == sim_opt.scheduler.peak_pending
        gauge = result_opt.trace.metrics.gauge("scheduler.peak_pending")
        assert gauge.value == sim_opt.scheduler.peak_pending

    def test_shard_parallel_reports_peak_pending(self):
        __, result, __d = _simulate("shard_parallel")
        record = result.trace.records_named("run.complete")[0]
        assert record.wall["peak_pending"] > 0
