"""Streaming-workload parity: generator injection vs. the list path.

The streaming layer's contract has three legs:

* an **unpaced** ``TxStream`` is materialized at construction, so
  generator-built workloads reproduce the recorded ``seed_digests.json``
  baselines bit-for-bit on every engine that list workloads do;
* **paced** injection (``inject_batch=``) is deterministic and
  engine-agnostic: the fast and shard-parallel engines (inline and fork
  backends) emit identical trace digests, confirm identical counts, and
  evict identically under a mempool bound;
* every unsupported combination is refused loudly at construction, not
  degraded silently at runtime.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.consensus.miner import MinerIdentity
from repro.consensus.pow import PoWParameters
from repro.errors import ConfigError, WorkloadError
from repro.faults.plan import FaultPlan
from repro.observe import Tracer
from repro.runtime.shard_workers import fork_available
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import (
    MAX_MATERIALIZED_TXS,
    TxStream,
    streaming_uniform_contract_workload,
    uniform_contract_workload,
)
from tests.sim.test_engine_parity import MINERS, PROFILES, SEED, TXS

BASELINES = json.loads(
    (pathlib.Path(__file__).parent / "seed_digests.json").read_text()
)


def _stream() -> TxStream:
    return streaming_uniform_contract_workload(
        total_txs=TXS, contract_shards=3, seed=SEED
    )


def _simulate_stream(engine: str, unified: bool = False, faulty: bool = False):
    """The exact `_simulate` setup of test_engine_parity, with the
    workload handed over as a TxStream instead of a list."""
    identities = [MinerIdentity.create(f"m{i}") for i in range(MINERS)]
    plan = (
        FaultPlan.lossy(0.08, duplicate_probability=0.05) if faulty else None
    )
    config = ProtocolConfig(
        seed=SEED,
        engine=engine,
        trace=True,
        max_duration=5000.0,
        fault_plan=plan,
        retransmit_interval=60.0 if faulty else None,
    )
    sim = ProtocolSimulation(identities, _stream(), config=config, unified=unified)
    return sim.run()


def _run_paced(
    engine: str,
    workers: int | None = None,
    limit: int | None = None,
    batch: int = 10,
):
    tracer = Tracer()
    config = ProtocolConfig(
        seed=SEED,
        engine=engine,
        shard_workers=workers,
        trace=tracer,
        max_duration=5000.0,
        pow_params=PoWParameters.fast_confirmation(),
        inject_batch=batch,
        inject_interval=1.0,
        mempool_limit=limit,
    )
    identities = [MinerIdentity.create(f"m{i}") for i in range(MINERS)]
    sim = ProtocolSimulation(identities, _stream(), config=config)
    result = sim.run()
    return result, tracer.digest()


class TestUnpacedStreamParity:
    """TxStream without pacing == materialized list, on every engine."""

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_fast_engine_stream_matches_recorded_baseline(self, profile):
        result = _simulate_stream("fast", **PROFILES[profile])
        assert result.trace.digest() == BASELINES[profile]

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_shard_parallel_stream_matches_recorded_baseline(self, profile):
        result = _simulate_stream("shard_parallel", **PROFILES[profile])
        assert result.trace.digest() == BASELINES[profile]

    def test_stream_fields_match_list_generator(self):
        stream_txs = _stream().materialize()
        list_txs = uniform_contract_workload(
            total_txs=TXS, contract_shards=3, seed=SEED
        )
        assert len(stream_txs) == len(list_txs)
        for a, b in zip(stream_txs, list_txs):
            assert (a.sender, a.recipient, a.amount, a.fee, a.kind,
                    a.contract, a.nonce) == (
                b.sender, b.recipient, b.amount, b.fee, b.kind,
                b.contract, b.nonce)


class TestPacedStreamingParity:
    """Paced injection: fast vs. shard-parallel, repeatably."""

    def test_fast_engine_paced_runs_are_deterministic(self):
        first, digest_a = _run_paced("fast")
        second, digest_b = _run_paced("fast")
        assert digest_a == digest_b
        assert first.confirmed_count() == second.confirmed_count()
        assert first.duration == second.duration
        assert first.evicted == second.evicted == 0

    def test_shard_parallel_paced_digest_matches_fast(self):
        fast, digest_fast = _run_paced("fast")
        par, digest_par = _run_paced("shard_parallel")
        assert digest_par == digest_fast
        assert par.confirmed_count() == fast.confirmed_count()
        assert par.per_shard_confirmed == fast.per_shard_confirmed
        assert par.duration == fast.duration
        assert par.evicted == fast.evicted
        assert dict(par.rewards.blocks_mined) == dict(fast.rewards.blocks_mined)

    @pytest.mark.skipif(not fork_available(), reason="needs os.fork")
    def test_fork_backend_paced_digest_matches_fast(self):
        fast, digest_fast = _run_paced("fast")
        par, digest_par = _run_paced("shard_parallel", workers=3)
        assert digest_par == digest_fast
        assert par.confirmed_count() == fast.confirmed_count()
        assert par.duration == fast.duration

    def test_eviction_determinism_across_engines(self):
        """A tight mempool bound evicts the same transactions (counted
        per node) at the same instants on every engine."""
        fast, digest_fast = _run_paced("fast", limit=4, batch=8)
        par, digest_par = _run_paced("shard_parallel", limit=4, batch=8)
        assert fast.evicted > 0
        assert par.evicted == fast.evicted
        assert digest_par == digest_fast
        assert par.confirmed_count() == fast.confirmed_count()
        assert par.duration == fast.duration
        again, digest_again = _run_paced("fast", limit=4, batch=8)
        assert again.evicted == fast.evicted
        assert digest_again == digest_fast

    def test_defer_events_present_under_backpressure(self):
        __, __digest = _run_paced("fast", limit=4, batch=8)
        result, __ = _run_paced("fast", limit=4, batch=8)
        names = [record.name for record in result.trace.records]
        assert "inject.batch" in names
        assert "inject.done" in names


class TestStreamingRefusals:
    """Every unsupported combination fails loudly at construction."""

    def _identities(self):
        return [MinerIdentity.create(f"m{i}") for i in range(3)]

    def test_paced_legacy_engine_refused(self):
        with pytest.raises(ConfigError, match="legacy"):
            ProtocolConfig(engine="legacy", inject_batch=10)

    def test_paced_active_fault_plan_refused(self):
        with pytest.raises(ConfigError, match="fault"):
            ProtocolConfig(
                inject_batch=10,
                fault_plan=FaultPlan.lossy(0.1),
                retransmit_interval=60.0,
            )

    def test_paced_list_workload_refused(self):
        config = ProtocolConfig(inject_batch=10)
        workload = uniform_contract_workload(
            total_txs=12, contract_shards=2, seed=1
        )
        with pytest.raises(ConfigError, match="TxStream"):
            ProtocolSimulation(self._identities(), workload, config=config)

    def test_lineage_with_stream_refused(self):
        config = ProtocolConfig(
            inject_batch=10, trace=Tracer(lineage=True)
        )
        with pytest.raises(ConfigError, match="lineage"):
            ProtocolSimulation(self._identities(), _stream(), config=config)

    def test_unified_with_stream_refused(self):
        config = ProtocolConfig(inject_batch=10)
        with pytest.raises(ConfigError, match="unification"):
            ProtocolSimulation(
                self._identities(), _stream(), config=config, unified=True
            )

    def test_oversized_stream_materialization_refused(self):
        big = streaming_uniform_contract_workload(
            total_txs=MAX_MATERIALIZED_TXS + 1, contract_shards=2, seed=1
        )
        with pytest.raises(WorkloadError, match="cap"):
            big.materialize()

    def test_oversized_stream_without_pacing_refused(self):
        big = streaming_uniform_contract_workload(
            total_txs=MAX_MATERIALIZED_TXS + 1, contract_shards=2, seed=1
        )
        with pytest.raises(WorkloadError, match="cap"):
            ProtocolSimulation(
                self._identities(), big, config=ProtocolConfig()
            )
