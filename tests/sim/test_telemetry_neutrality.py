"""Telemetry must never move a digest.

Heartbeats sample scheduler and mempool state without emitting trace
records or consuming RNG draws; shard-load accounting reads counters
the run maintains anyway. These tests hold the whole telemetry layer
against the *recorded* ``seed_digests.json`` baselines on every engine
— serial fast, the frozen legacy oracle, and shard-parallel on both
the inline and forked backends — so an instrumentation site that
accidentally perturbs event order or draw order cannot land.
"""

import json
import pathlib

import pytest

from repro.consensus.miner import MinerIdentity
from repro.observe import Telemetry
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import (
    streaming_uniform_contract_workload,
    uniform_contract_workload,
)

SEED = 7
MINERS = 6
TXS = 40

BASELINES = json.loads(
    (pathlib.Path(__file__).parent / "seed_digests.json").read_text()
)


def _run(engine: str, telemetry, workers: int | None = None, stream=False):
    miners = [MinerIdentity.create(f"m{i}") for i in range(MINERS)]
    if stream:
        workload = streaming_uniform_contract_workload(
            total_txs=TXS, contract_shards=3, seed=SEED
        )
    else:
        workload = uniform_contract_workload(
            total_txs=TXS, contract_shards=3, seed=SEED
        )
    config = ProtocolConfig(
        seed=SEED,
        engine=engine,
        trace=True,
        max_duration=5000.0,
        shard_workers=workers,
        telemetry=telemetry,
    )
    return ProtocolSimulation(miners, workload, config=config).run()


ENGINES = [
    ("fast", None),
    ("legacy", None),
    ("shard_parallel", 1),  # inline backend
    ("shard_parallel", 2),  # forked workers
]


class TestDigestNeutrality:
    @pytest.mark.parametrize("engine,workers", ENGINES)
    def test_heartbeats_leave_recorded_baseline_untouched(
        self, engine, workers
    ):
        telemetry = Telemetry(heartbeat_interval=25.0)
        result = _run(engine, telemetry, workers=workers)
        assert result.trace.digest() == BASELINES["clean"]
        assert telemetry.samples, "heartbeats should have fired"

    @pytest.mark.parametrize("engine,workers", ENGINES)
    def test_on_off_digests_identical(self, engine, workers):
        on = _run(engine, Telemetry(heartbeat_interval=10.0), workers=workers)
        off = _run(engine, False, workers=workers)
        assert on.trace.digest() == off.trace.digest()
        assert on.confirmed_count() == off.confirmed_count()
        assert on.shard_stats is not None
        assert off.shard_stats is None

    def test_streamed_injection_stays_neutral(self):
        """Traffic accounting at injection time must not disturb the
        stream-vs-list digest equality contract."""
        on = _run("fast", Telemetry(heartbeat_interval=25.0), stream=True)
        off = _run("fast", False, stream=True)
        assert on.trace.digest() == off.trace.digest() == BASELINES["clean"]

    def test_final_heartbeat_only_when_interval_none(self):
        """``heartbeat_interval=None`` keeps the periodic sampler off
        but still takes the end-of-run snapshot for the load report."""
        telemetry = Telemetry(heartbeat_interval=None)
        result = _run("fast", telemetry)
        assert result.trace.digest() == BASELINES["clean"]
        assert len(telemetry.samples) == 1


class TestWorkerProfiles:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_profiles_populated_per_shard(self, workers):
        telemetry = Telemetry(heartbeat_interval=50.0)
        result = _run("shard_parallel", telemetry, workers=workers)
        profile = telemetry.worker_profile
        assert profile, "per-loop profiles should be reported"
        for shard, entry in profile.items():
            assert entry["busy_s"] >= 0.0
            assert entry["stall_s"] >= 0.0
            assert entry["windows"] > 0
            # The deterministic twins of the wall-clock figures travel
            # through MetricsRegistry.merge (fork-safe aggregation).
            counters = telemetry.metrics.snapshot()["counters"]
            assert counters[f"worker.shard{shard}.windows"] == entry["windows"]
            assert counters[f"worker.shard{shard}.events"] == entry["events"]
        assert result.shard_stats.total_confirmed == result.confirmed_count()

    def test_replayed_intents_counted(self):
        telemetry = Telemetry(heartbeat_interval=None)
        _run("shard_parallel", telemetry, workers=1)
        counters = telemetry.metrics.snapshot()["counters"]
        histograms = telemetry.metrics.snapshot()["histograms"]
        assert "coordinator.windows" in counters
        assert counters["coordinator.windows"] > 0
        assert "coordinator.intents_per_barrier" in histograms
