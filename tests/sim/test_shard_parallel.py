"""Shard-parallel engine parity: per-shard loops vs. the serial fast engine.

The headline guarantee of ``engine="shard_parallel"``
(:mod:`repro.runtime.shard_workers`) is that partitioning the event loop
by shard changes *nothing observable*: same-seed runs produce
bit-identical trace digests and identical result fields. These tests
hold that against the recorded ``seed_digests.json`` baselines (so the
parallel engine is pinned to the exact historical stream, not merely to
whatever the fast engine currently emits), across scenario runs (probes,
lineage tracing, adversarial behaviors, horizon mode), and on the
fork-based multi-worker backend.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.consensus.miner import MinerIdentity
from repro.errors import ConfigError
from repro.net.network import LatencyModel
from repro.observe import Tracer
from repro.runtime.shard_workers import fork_available
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import uniform_contract_workload
from tests.sim.test_engine_parity import PROFILES, _simulate

BASELINES = json.loads(
    (pathlib.Path(__file__).parent / "seed_digests.json").read_text()
)

RESULT_FIELDS = (
    "duration",
    "confirmed_tx_ids",
    "blocks_rejected",
    "rejection_reasons",
    "per_shard_confirmed",
    "drops",
    "retransmissions",
    "fallbacks",
    "equivocations_detected",
)

REWARD_FIELDS = (
    "block_rewards",
    "fee_income",
    "blocks_mined",
    "empty_blocks_mined",
)


def _assert_results_identical(fast, par):
    for fieldname in RESULT_FIELDS:
        assert getattr(par, fieldname) == getattr(fast, fieldname), fieldname
    for fieldname in REWARD_FIELDS:
        assert dict(getattr(par.rewards, fieldname)) == dict(
            getattr(fast.rewards, fieldname)
        ), fieldname


class TestRecordedBaselineParity:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_digest_matches_recorded_baseline(self, profile):
        """The parallel engine reproduces the *committed* digests — the
        same pin the fast and legacy engines are held to."""
        __, result = _simulate("shard_parallel", **PROFILES[profile])
        assert result.trace.digest() == BASELINES[profile]

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_result_fields_match_fast_engine(self, profile):
        # Tx ids embed a process-global serial, so confirmed-set
        # comparisons must run both engines over one shared workload.
        workload = uniform_contract_workload(
            total_txs=40, contract_shards=3, seed=7
        )
        __, fast = _simulate("fast", workload=workload, **PROFILES[profile])
        __, par = _simulate(
            "shard_parallel", workload=workload, **PROFILES[profile]
        )
        assert par.trace.digest() == fast.trace.digest()
        _assert_results_identical(fast, par)

    def test_run_complete_wall_sidecar_names_engine_and_backend(self):
        __, result = _simulate("shard_parallel")
        record = result.trace.records_named("run.complete")[0]
        assert record.wall["engine"] == "shard_parallel"
        assert record.wall["backend"] == "inline"
        assert record.wall["workers"] == 1


class TestScenarioParity:
    @pytest.mark.parametrize("name", ["takeover", "double-spend", "eclipse"])
    def test_scenario_digest_and_report_parity(self, name):
        """Scenarios exercise everything at once: adversarial behaviors,
        pre-scheduled probes, lineage tracing, and horizon mode."""
        from repro.scenarios.base import run_scenario
        from repro.scenarios.library import SCENARIOS

        fast = run_scenario(SCENARIOS[name](), seed=3, engine="fast")
        par = run_scenario(SCENARIOS[name](), seed=3, engine="shard_parallel")
        assert fast.digest == par.digest
        assert dataclasses.replace(
            par.report, engine="fast"
        ) == fast.report


class TestBackendsAndFallbacks:
    @pytest.mark.skipif(not fork_available(), reason="needs os.fork")
    @pytest.mark.parametrize("profile", ["clean", "unified-faulty"])
    def test_fork_backend_matches_recorded_baseline(self, profile):
        from repro.faults.plan import FaultPlan

        identities = [MinerIdentity.create(f"m{i}") for i in range(6)]
        workload = uniform_contract_workload(
            total_txs=40, contract_shards=3, seed=7
        )
        plan = (
            FaultPlan.lossy(0.08, duplicate_probability=0.05)
            if "faulty" in profile
            else None
        )
        config = ProtocolConfig(
            seed=7,
            engine="shard_parallel",
            trace=True,
            max_duration=5000.0,
            fault_plan=plan,
            retransmit_interval=60.0 if plan else None,
            shard_workers=2,
        )
        sim = ProtocolSimulation(
            identities, workload, config=config, unified="unified" in profile
        )
        result = sim.run()
        assert result.trace.digest() == BASELINES[profile]
        record = result.trace.records_named("run.complete")[0]
        assert record.wall["backend"] == "fork"
        assert record.wall["workers"] == 2

    def test_zero_base_latency_falls_back_to_serial_fast_path(self):
        """No base latency ⇒ no lookahead bound ⇒ the config is accepted
        but the run executes on the (equivalent) serial fast loop."""
        identities = [MinerIdentity.create(f"m{i}") for i in range(4)]
        workload = uniform_contract_workload(
            total_txs=20, contract_shards=2, seed=11
        )
        latency = LatencyModel(base_seconds=0.0, jitter_seconds=0.0)
        digests = {}
        for engine in ("fast", "shard_parallel"):
            config = ProtocolConfig(
                seed=11, engine=engine, trace=True, latency=latency
            )
            result = ProtocolSimulation(
                identities, workload, config=config
            ).run()
            digests[engine] = result.trace.digest()
        assert digests["fast"] == digests["shard_parallel"]

    def test_run_to_horizon_parity(self):
        identities = [MinerIdentity.create(f"m{i}") for i in range(4)]
        digests = {}
        for engine in ("fast", "shard_parallel"):
            workload = uniform_contract_workload(
                total_txs=20, contract_shards=2, seed=11
            )
            config = ProtocolConfig(
                seed=11,
                engine=engine,
                trace=True,
                max_duration=600.0,
                run_to_horizon=True,
            )
            result = ProtocolSimulation(
                identities, workload, config=config
            ).run()
            assert result.duration == 600.0
            digests[engine] = result.trace.digest()
        assert digests["fast"] == digests["shard_parallel"]

    def test_lineage_tracing_parity(self):
        identities = [MinerIdentity.create(f"m{i}") for i in range(6)]
        workload = uniform_contract_workload(
            total_txs=40, contract_shards=3, seed=7
        )
        digests = {}
        for engine in ("fast", "shard_parallel"):
            config = ProtocolConfig(
                seed=7,
                engine=engine,
                trace=Tracer(lineage=True),
                max_duration=5000.0,
            )
            result = ProtocolSimulation(
                identities, workload, config=config
            ).run()
            digests[engine] = result.trace.digest()
            assert result.trace.count("tx.seen") > 0
            assert result.trace.count("tx.confirmed") > 0
        assert digests["fast"] == digests["shard_parallel"]


class TestConfigValidation:
    def test_shard_parallel_engine_accepted(self):
        assert ProtocolConfig(engine="shard_parallel").engine == "shard_parallel"

    def test_unknown_engine_still_rejected(self):
        with pytest.raises(ConfigError, match="shard_parallel"):
            ProtocolConfig(engine="turbo")

    def test_nonpositive_shard_workers_rejected(self):
        with pytest.raises(ConfigError, match="shard_workers"):
            ProtocolConfig(shard_workers=0)
