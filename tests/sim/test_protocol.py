"""Tests for repro.sim.protocol — the full-node integration layer."""

import pytest

from repro.consensus.miner import MinerIdentity, ShardLiarBehavior
from repro.consensus.pow import PoWParameters
from repro.net.network import LatencyModel
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import uniform_contract_workload

FAST_POW = PoWParameters(difficulty=0x40000 // 60)  # ~1 s blocks
QUICK = ProtocolConfig(
    pow_params=FAST_POW,
    latency=LatencyModel(base_seconds=0.01, jitter_seconds=0.01),
    max_duration=2_000.0,
    seed=5,
)


@pytest.fixture(scope="module")
def small_run():
    miners = [MinerIdentity.create(f"proto-{i}") for i in range(6)]
    txs = uniform_contract_workload(total_txs=24, contract_shards=2, seed=3)
    sim = ProtocolSimulation(miners, txs, config=QUICK)
    return sim, sim.run()


class TestProtocolRun:
    def test_workload_confirms(self, small_run):
        sim, result = small_run
        # Every transaction routed to a populated shard confirms.
        assert result.confirmed_count() > 0
        populated = {
            sim.assignment.shard_of[m] for m in sim.assignment.shard_of
        }
        for shard, confirmed in result.per_shard_confirmed.items():
            if shard in populated:
                assert confirmed >= 0

    def test_no_rejections_among_honest_miners(self, small_run):
        __, result = small_run
        assert result.blocks_rejected == 0

    def test_duration_bounded(self, small_run):
        __, result = small_run
        assert result.duration <= QUICK.max_duration

    def test_assignment_is_verifiable(self, small_run):
        sim, __ = small_run
        verify = sim.assignment.verifier()
        for public, shard in sim.assignment.shard_of.items():
            assert verify(public, shard)


class TestRewardAccounting:
    def test_every_block_credited(self, small_run):
        __, result = small_run
        assert sum(result.rewards.blocks_mined.values()) > 0

    def test_fee_income_tracks_confirmations(self, small_run):
        __, result = small_run
        total_fees = sum(result.rewards.fee_income.values())
        assert total_fees >= 0
        # Someone earned fees (the workload carries nonzero fees).
        assert any(v > 0 for v in result.rewards.fee_income.values())

    def test_wasted_power_visible_for_empty_miners(self, small_run):
        sim, result = small_run
        # Miners in drained shards mined empty blocks near the end.
        fractions = [
            result.rewards.wasted_power_fraction(public)
            for public in result.rewards.blocks_mined
        ]
        assert all(0.0 <= f <= 1.0 for f in fractions)


class TestCheaterRejection:
    def test_shard_liar_blocks_rejected(self):
        miners = [MinerIdentity.create(f"cheat-{i}") for i in range(5)]
        txs = uniform_contract_workload(total_txs=20, contract_shards=2, seed=4)
        liar = miners[0]
        sim = ProtocolSimulation(
            miners,
            txs,
            config=QUICK,
            behaviors={liar.public: ShardLiarBehavior(fake_shard=77)},
        )
        result = sim.run()
        # Every block the liar broadcast fails the Sec. III-C membership
        # check at every honest receiver.
        assert result.blocks_rejected > 0
        assert any("not a member" in r for r in result.rejection_reasons)

    def test_liar_transactions_not_stolen(self):
        miners = [MinerIdentity.create(f"cheat2-{i}") for i in range(5)]
        txs = uniform_contract_workload(total_txs=20, contract_shards=2, seed=6)
        liar = miners[0]
        sim = ProtocolSimulation(
            miners,
            txs,
            config=QUICK,
            behaviors={liar.public: ShardLiarBehavior(fake_shard=77)},
        )
        result = sim.run()
        # The liar's ledger never contributes to anyone else's view: her
        # blocks were rejected by every honest node.
        honest_nodes = [sim.node(m.public) for m in miners[1:]]
        liar_blocks = {
            b.block_hash
            for b in sim.node(liar.public).ledger.canonical_chain()
            if b.header.miner == liar.public
        }
        for node in honest_nodes:
            assert not (liar_blocks & node.ledger.canonical_hashes())


class TestValidationFailures:
    def test_needs_inputs(self):
        miners = [MinerIdentity.create("solo")]
        txs = uniform_contract_workload(5, 1, seed=7)
        with pytest.raises(Exception):
            ProtocolSimulation([], txs)
        with pytest.raises(Exception):
            ProtocolSimulation(miners, [])
