"""The bounded mempool: deterministic eviction, counters, and the
eviction/compaction interaction with the cached ranked view.

The load-bearing property: under any interleaving of add / evict /
remove / re-add, ``select_by_fee`` stays bit-identical to the
``select_by_fee_sorted`` oracle and ``_ranked_stale`` never over-counts
(over-counting would defer compaction forever and let stale entries
shadow live ones).
"""

import random

import pytest

from repro.chain.mempool import Mempool, _fee_rank
from repro.errors import ConfigError
from tests.conftest import make_call


def _assert_cache_consistent(pool: Mempool) -> None:
    """The ranked view's stale counter must be exact, never an estimate."""
    if pool._ranked is None:
        return
    actual_stale = sum(1 for tx in pool._ranked if tx.tx_id not in pool._pool)
    assert pool._ranked_stale == actual_stale
    live = [tx for tx in pool._ranked if tx.tx_id in pool._pool]
    assert len(live) == len(pool._pool)
    assert live == sorted(live, key=_fee_rank)


class TestBound:
    def test_limit_must_be_positive(self):
        with pytest.raises(ConfigError):
            Mempool(limit=0)
        with pytest.raises(ConfigError):
            Mempool(limit=-3)

    def test_evicts_lowest_fee_resident(self):
        pool = Mempool(limit=2)
        low = make_call("0xua", fee=1)
        mid = make_call("0xub", fee=5)
        high = make_call("0xuc", fee=9)
        assert pool.add(low) and pool.add(mid)
        assert pool.add(high)  # admitted; low is evicted
        assert len(pool) == 2
        assert low.tx_id not in pool
        assert pool.evictions == 1

    def test_incoming_worse_than_worst_is_refused(self):
        pool = Mempool(limit=2)
        pool.add(make_call("0xua", fee=5))
        pool.add(make_call("0xub", fee=6))
        worse = make_call("0xuc", fee=1)
        assert not pool.add(worse)
        assert worse.tx_id not in pool
        assert len(pool) == 2
        assert pool.evictions == 1

    def test_fee_tie_breaks_on_tx_id(self):
        a = make_call("0xua", fee=5)
        b = make_call("0xub", fee=5)
        best = min([a, b], key=_fee_rank)
        # Whatever the admission order, the rank winner keeps the seat.
        for order in ([a, b], [b, a]):
            pool = Mempool(limit=1)
            for tx in order:
                pool.add(tx)
            assert [t.tx_id for t in pool.pending()] == [best.tx_id]
            assert pool.evictions == 1

    def test_identical_admission_sequence_evicts_identically(self):
        rng = random.Random(11)
        txs = [make_call(f"0xu{i}", fee=rng.randrange(1, 30)) for i in range(60)]
        pool_a, pool_b = Mempool(limit=10), Mempool(limit=10)
        pool_a.select_by_fee(1)  # force the cache on one side only
        for tx in txs:
            pool_a.add(tx)
            pool_b.add(tx)
        assert sorted(t.tx_id for t in pool_a.pending()) == sorted(
            t.tx_id for t in pool_b.pending()
        )
        assert pool_a.evictions == pool_b.evictions
        assert pool_a.select_by_fee(10) == pool_b.select_by_fee_sorted(10)

    def test_eviction_counted_without_cache(self):
        pool = Mempool(fee_cache=False, limit=1)
        pool.add(make_call("0xua", fee=2))
        pool.add(make_call("0xub", fee=7))
        assert pool.evictions == 1
        assert len(pool) == 1
        assert pool.pending()[0].fee == 7


class TestEvictionCompactionInteraction:
    """Satellite: ``_note_removed`` vs. tail eviction (`mempool.py:82`).

    Evicting through the ranked tail drops entries physically; routing
    those drops through the lazy stale counter would over-count and,
    past the threshold arithmetic, skip compaction while serving stale
    transactions. These tests pin the exact-counter behavior.
    """

    def test_stale_counter_exact_under_evictions(self):
        pool = Mempool(limit=5)
        txs = [make_call(f"0xu{i}", fee=i + 1) for i in range(5)]
        for tx in txs:
            pool.add(tx)
        pool.select_by_fee(3)  # build the cache
        # Confirm two (lazy removal), then force evictions via adds.
        pool.remove_confirmed({txs[0].tx_id, txs[1].tx_id})
        for i in range(4):
            pool.add(make_call(f"0xv{i}", fee=50 + i))
        _assert_cache_consistent(pool)
        assert pool.select_by_fee(10) == pool.select_by_fee_sorted(10)

    def test_evict_skips_stale_tail_entries(self):
        pool = Mempool(limit=3)
        low = make_call("0xua", fee=1)
        mid = make_call("0xub", fee=4)
        high = make_call("0xuc", fee=9)
        for tx in (low, mid, high):
            pool.add(tx)
        pool.select_by_fee(1)
        # Remove the ranked tail lazily, then admit at capacity... wait:
        # removal drops len below the limit; refill to capacity first.
        pool.remove(low.tx_id)
        pool.add(make_call("0xud", fee=6))
        _assert_cache_consistent(pool)
        # Now at capacity with a possibly-stale tail; the next eviction
        # must pick the live worst (mid, fee=4), never the stale entry.
        pool.add(make_call("0xue", fee=8))
        assert mid.tx_id not in pool
        _assert_cache_consistent(pool)
        assert pool.select_by_fee(10) == pool.select_by_fee_sorted(10)

    def test_readd_after_remove_does_not_duplicate_ranked_entry(self):
        pool = Mempool()
        tx = make_call("0xua", fee=5)
        other = make_call("0xub", fee=3)
        pool.add(tx)
        pool.add(other)
        pool.select_by_fee(1)  # build the cache
        pool.remove(tx.tx_id)
        pool.add(tx)  # faulty-network re-pooling
        _assert_cache_consistent(pool)
        assert pool._ranked is not None and len(pool._ranked) == 2
        assert pool.select_by_fee(10) == pool.select_by_fee_sorted(10)

    def test_differential_add_evict_remove_interleavings(self):
        """The satellite's differential test: cached selection vs. the
        full-sort oracle under seeded interleavings that exercise
        eviction, lazy removal, compaction and re-adds together."""
        for seed in range(6):
            rng = random.Random(100 + seed)
            pool = Mempool(limit=12)
            removed: list = []
            for step in range(300):
                op = rng.random()
                if op < 0.5:
                    tx = make_call(f"0xu{seed}-{step}", fee=rng.randrange(1, 25))
                    pool.add(tx)
                elif op < 0.7 and pool.pending():
                    victim = rng.choice(pool.pending())
                    pool.remove(victim.tx_id)
                    removed.append(victim)
                elif op < 0.8 and removed:
                    pool.add(removed.pop())  # re-add (re-pooled duplicate)
                else:
                    limit = rng.randrange(0, 15)
                    assert pool.select_by_fee(limit) == (
                        pool.select_by_fee_sorted(limit)
                    ), f"seed={seed} step={step}"
                assert len(pool) <= 12
            _assert_cache_consistent(pool)
            assert pool.select_by_fee(20) == pool.select_by_fee_sorted(20)
