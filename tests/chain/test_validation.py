"""Tests for repro.chain.validation — the Sec. III-C block checks."""

from repro.chain.block import Block
from repro.chain.validation import BlockValidator, TransactionValidator
from tests.conftest import make_transfer


def make_block(miner="pk-y", shard=1, txs=()):
    return Block.build(
        parent_hash=Block.genesis(shard).block_hash,
        miner=miner,
        shard_id=shard,
        height=1,
        timestamp=1.0,
        transactions=list(txs),
    )


class TestTransactionValidator:
    def test_valid_tx(self, world):
        validator = TransactionValidator(world)
        verdict = validator.validate(make_transfer("0xualice", "0xubob"))
        assert verdict.valid

    def test_invalid_tx_carries_reason(self, world):
        validator = TransactionValidator(world)
        verdict = validator.validate(
            make_transfer("0xualice", "0xubob", amount=10_000)
        )
        assert not verdict.valid
        assert "balance" in verdict.reason

    def test_validate_does_not_mutate(self, world):
        TransactionValidator(world).validate(make_transfer("0xualice", "0xubob"))
        assert world.account("0xualice").nonce == 0

    def test_batch_sees_sequential_effects(self, world):
        validator = TransactionValidator(world)
        verdicts = validator.validate_batch(
            [
                make_transfer("0xualice", "0xubob", nonce=0),
                make_transfer("0xualice", "0xubob", nonce=1),
                make_transfer("0xualice", "0xubob", nonce=1),  # replay
            ]
        )
        assert [v.valid for v in verdicts] == [True, True, False]

    def test_batch_leaves_state_untouched(self, world):
        TransactionValidator(world).validate_batch(
            [make_transfer("0xualice", "0xubob", nonce=0)]
        )
        assert world.account("0xualice").nonce == 0


class TestBlockValidator:
    def membership(self, table: dict[str, int]):
        return lambda public, shard: table.get(public) == shard

    def test_same_shard_block_recorded(self):
        validator = BlockValidator(1, self.membership({"pk-y": 1}))
        verdict = validator.inspect(make_block(miner="pk-y", shard=1))
        assert verdict.accepted and verdict.recorded

    def test_foreign_shard_block_accepted_not_recorded(self):
        validator = BlockValidator(2, self.membership({"pk-y": 1}))
        verdict = validator.inspect(make_block(miner="pk-y", shard=1))
        assert verdict.accepted and not verdict.recorded

    def test_shard_liar_rejected(self):
        """First Sec. III-C verification: Y cheats on her shard id."""
        validator = BlockValidator(2, self.membership({"pk-y": 1}))
        verdict = validator.inspect(make_block(miner="pk-y", shard=2))
        assert not verdict.accepted
        assert "not a member" in verdict.reason

    def test_unknown_miner_rejected(self):
        validator = BlockValidator(1, self.membership({}))
        verdict = validator.inspect(make_block(miner="pk-stranger", shard=1))
        assert not verdict.accepted

    def test_body_tampering_rejected(self):
        validator = BlockValidator(1, self.membership({"pk-y": 1}))
        honest = make_block(miner="pk-y", shard=1)
        tampered = Block(
            header=honest.header,
            transactions=(make_transfer("0xuevil", "0xue2"),),
        )
        verdict = validator.inspect(tampered)
        assert not verdict.accepted
        assert "root" in verdict.reason
