"""Tests for repro.chain.ledger."""

import pytest

from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.errors import LedgerError
from tests.conftest import make_call


def extend(ledger: Ledger, parent_hash: str, height: int, txs=(), miner="pk"):
    block = Block.build(
        parent_hash=parent_hash,
        miner=miner,
        shard_id=ledger.shard_id,
        height=height,
        timestamp=float(height),
        transactions=list(txs),
    )
    ledger.add_block(block)
    return block


class TestAppend:
    def test_fresh_ledger_is_at_genesis(self):
        ledger = Ledger(shard_id=1)
        assert ledger.height == 0
        assert ledger.head.header.height == 0

    def test_simple_chain(self):
        ledger = Ledger()
        b1 = extend(ledger, ledger.head_hash, 1)
        b2 = extend(ledger, b1.block_hash, 2)
        assert ledger.height == 2
        assert ledger.head_hash == b2.block_hash

    def test_duplicate_rejected(self):
        ledger = Ledger()
        block = Block.build(ledger.head_hash, "pk", 0, 1, 1.0)
        ledger.add_block(block)
        with pytest.raises(LedgerError, match="duplicate"):
            ledger.add_block(block)

    def test_unknown_parent_rejected(self):
        ledger = Ledger()
        orphan = Block.build("f" * 64, "pk", 0, 1, 1.0)
        with pytest.raises(LedgerError, match="unknown parent"):
            ledger.add_block(orphan)

    def test_add_block_reports_head_change(self):
        ledger = Ledger()
        genesis_hash = ledger.head_hash
        b1 = Block.build(genesis_hash, "pk1", 0, 1, 1.0)
        assert ledger.add_block(b1) is True
        fork = Block.build(genesis_hash, "pk2", 0, 1, 1.5)
        assert ledger.add_block(fork) is False  # same height loses tie


class TestForkChoice:
    def test_longest_chain_wins(self):
        ledger = Ledger()
        a1 = extend(ledger, ledger.head_hash, 1, miner="pkA")
        b1 = Block.build(Block.genesis(0).block_hash, "pkB", 0, 1, 1.1)
        ledger.add_block(b1)
        assert ledger.head_hash == a1.block_hash  # first arrival keeps tie
        b2 = extend(ledger, b1.block_hash, 2, miner="pkB")
        assert ledger.head_hash == b2.block_hash  # longer fork overtakes

    def test_stale_blocks_counted(self):
        ledger = Ledger()
        extend(ledger, ledger.head_hash, 1, miner="pkA")
        loser = Block.build(Block.genesis(0).block_hash, "pkB", 0, 1, 1.2)
        ledger.add_block(loser)
        assert ledger.count_stale_blocks() == 1

    def test_canonical_chain_order(self):
        ledger = Ledger()
        b1 = extend(ledger, ledger.head_hash, 1)
        b2 = extend(ledger, b1.block_hash, 2)
        chain = ledger.canonical_chain()
        assert [b.header.height for b in chain] == [0, 1, 2]
        assert chain[-1].block_hash == b2.block_hash


class TestStatistics:
    def test_confirmed_transactions(self):
        ledger = Ledger()
        tx1, tx2 = make_call("0xua"), make_call("0xub")
        b1 = extend(ledger, ledger.head_hash, 1, txs=[tx1])
        extend(ledger, b1.block_hash, 2, txs=[tx2])
        assert ledger.confirmed_tx_ids() == {tx1.tx_id, tx2.tx_id}

    def test_fork_txs_not_confirmed(self):
        ledger = Ledger()
        tx_main, tx_fork = make_call("0xua"), make_call("0xub")
        extend(ledger, ledger.head_hash, 1, txs=[tx_main])
        fork = Block.build(
            Block.genesis(0).block_hash, "pkB", 0, 1, 1.2, [tx_fork]
        )
        ledger.add_block(fork)
        assert tx_fork.tx_id not in ledger.confirmed_tx_ids()

    def test_count_empty_blocks_excludes_genesis(self):
        ledger = Ledger()
        assert ledger.count_empty_blocks() == 0
        b1 = extend(ledger, ledger.head_hash, 1)  # empty
        extend(ledger, b1.block_hash, 2, txs=[make_call("0xua")])
        assert ledger.count_empty_blocks() == 1

    def test_count_empty_blocks_all_vs_canonical(self):
        ledger = Ledger()
        extend(ledger, ledger.head_hash, 1)
        fork = Block.build(Block.genesis(0).block_hash, "pkB", 0, 1, 1.2)
        ledger.add_block(fork)
        assert ledger.count_empty_blocks(canonical_only=True) == 1
        assert ledger.count_empty_blocks(canonical_only=False) == 2

    def test_knows(self):
        ledger = Ledger()
        block = extend(ledger, ledger.head_hash, 1)
        assert ledger.knows(block.block_hash)
        assert not ledger.knows("0" * 64)


class TestIncrementalViews:
    """The incremental canonical/confirmed views vs. the walk oracle."""

    def test_incremental_matches_scan_through_reorg(self):
        ledger = Ledger()
        tx_a, tx_b, tx_c = make_call("0xua"), make_call("0xub"), make_call("0xuc")
        a1 = extend(ledger, ledger.head_hash, 1, txs=[tx_a], miner="pkA")
        assert ledger.confirmed_tx_ids() == ledger.confirmed_tx_ids_scan()
        # A competing branch from genesis overtakes the head.
        b1 = Block.build(Block.genesis(0).block_hash, "pkB", 0, 1, 1.1, [tx_b])
        ledger.add_block(b1)
        b2 = extend(ledger, b1.block_hash, 2, txs=[tx_c], miner="pkB")
        assert ledger.head_hash == b2.block_hash
        assert ledger.confirmed_tx_ids() == ledger.confirmed_tx_ids_scan()
        assert tx_a.tx_id not in ledger.confirmed_tx_ids()
        # The original branch fights back and wins again.
        a2 = extend(ledger, a1.block_hash, 2, txs=[tx_b], miner="pkA")
        a3 = extend(ledger, a2.block_hash, 3, miner="pkA")
        assert ledger.head_hash == a3.block_hash
        assert ledger.confirmed_tx_ids() == ledger.confirmed_tx_ids_scan()
        assert tx_a.tx_id in ledger.confirmed_tx_ids()

    def test_duplicate_tx_across_branches_survives_unwind(self):
        # The same tx id confirmed on both branches must stay confirmed
        # after one branch is unwound (the multiset case).
        ledger = Ledger()
        shared = make_call("0xua")
        a1 = extend(ledger, ledger.head_hash, 1, txs=[shared], miner="pkA")
        b1 = Block.build(Block.genesis(0).block_hash, "pkB", 0, 1, 1.1, [shared])
        ledger.add_block(b1)
        extend(ledger, b1.block_hash, 2, miner="pkB")  # reorg to branch B
        assert shared.tx_id in ledger.confirmed_tx_ids()
        assert ledger.confirmed_tx_ids() == ledger.confirmed_tx_ids_scan()

    def test_version_bumps_only_on_head_change(self):
        ledger = Ledger()
        v0 = ledger.version
        b1 = extend(ledger, ledger.head_hash, 1)
        assert ledger.version == v0 + 1
        loser = Block.build(Block.genesis(0).block_hash, "pkB", 0, 1, 1.2)
        ledger.add_block(loser)  # no head change
        assert ledger.version == v0 + 1
        extend(ledger, b1.block_hash, 2)
        assert ledger.version == v0 + 2

    def test_canonical_hashes_and_is_canonical(self):
        ledger = Ledger()
        b1 = extend(ledger, ledger.head_hash, 1)
        loser = Block.build(Block.genesis(0).block_hash, "pkB", 0, 1, 1.2)
        ledger.add_block(loser)
        assert ledger.is_canonical(b1.block_hash)
        assert not ledger.is_canonical(loser.block_hash)
        assert ledger.canonical_hashes() == {
            ledger.genesis_hash,
            b1.block_hash,
        }

    def test_block_and_parent_accessors(self):
        ledger = Ledger()
        b1 = extend(ledger, ledger.head_hash, 1)
        assert ledger.block(b1.block_hash) is b1
        assert ledger.parent_of(b1.block_hash) == ledger.genesis_hash
        assert ledger.parent_of(ledger.genesis_hash) is None
        with pytest.raises(LedgerError):
            ledger.block("f" * 64)
        with pytest.raises(LedgerError):
            ledger.parent_of("f" * 64)
