"""Tests for repro.chain.account."""

import pytest

from repro.chain.account import Account, AccountKind
from repro.errors import InsufficientBalanceError


class TestAccount:
    def test_defaults(self):
        account = Account(address="0xu1")
        assert account.kind is AccountKind.USER
        assert account.balance == 0
        assert account.nonce == 0

    def test_credit(self):
        account = Account(address="0xu1")
        account.credit(10)
        account.credit(5)
        assert account.balance == 15

    def test_credit_rejects_negative(self):
        with pytest.raises(ValueError):
            Account(address="0xu1").credit(-1)

    def test_debit(self):
        account = Account(address="0xu1", balance=10)
        account.debit(4)
        assert account.balance == 6

    def test_debit_overdraft_rejected(self):
        account = Account(address="0xu1", balance=3)
        with pytest.raises(InsufficientBalanceError):
            account.debit(4)
        assert account.balance == 3  # unchanged on failure

    def test_debit_rejects_negative(self):
        with pytest.raises(ValueError):
            Account(address="0xu1", balance=5).debit(-1)

    def test_debit_exact_balance(self):
        account = Account(address="0xu1", balance=5)
        account.debit(5)
        assert account.balance == 0

    def test_bump_nonce(self):
        account = Account(address="0xu1")
        account.bump_nonce()
        account.bump_nonce()
        assert account.nonce == 2

    def test_snapshot_is_independent(self):
        account = Account(address="0xu1", balance=10, nonce=3)
        copy = account.snapshot()
        copy.credit(5)
        copy.bump_nonce()
        assert account.balance == 10
        assert account.nonce == 3
        assert copy.balance == 15
