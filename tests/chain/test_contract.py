"""Tests for repro.chain.contract."""

import pytest

from repro.chain.contract import SmartContract, TransferCondition
from repro.chain.state import WorldState
from tests.conftest import CONTRACT_A


class TestTransferCondition:
    def test_always_holds(self):
        assert TransferCondition(kind="always").holds(WorldState())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TransferCondition(kind="phase_of_moon")

    def test_subject_required_for_balance_conditions(self):
        with pytest.raises(ValueError):
            TransferCondition(kind="balance_below", threshold=5)

    def test_balance_below(self):
        state = WorldState()
        state.create_account("0xubob", balance=0)
        condition = TransferCondition(
            kind="balance_below", subject="0xubob", threshold=1
        )
        assert condition.holds(state)
        state.account("0xubob").credit(2)
        assert not condition.holds(state)

    def test_balance_at_least(self):
        state = WorldState()
        state.create_account("0xubob", balance=10)
        condition = TransferCondition(
            kind="balance_at_least", subject="0xubob", threshold=10
        )
        assert condition.holds(state)
        state.account("0xubob").debit(1)
        assert not condition.holds(state)

    def test_unknown_subject_treated_as_zero_balance(self):
        condition = TransferCondition(
            kind="balance_below", subject="0xghost", threshold=1
        )
        assert condition.holds(WorldState())


class TestSmartContract:
    def test_unconditional_factory(self):
        contract = SmartContract.unconditional(CONTRACT_A, "0xudest")
        assert contract.can_execute(WorldState())
        assert contract.beneficiary == "0xudest"

    def test_paper_example_scenario(self):
        # "transfer 2 ETH to user B if B's balance is below 1 ETH"
        state = WorldState()
        state.create_account("0xubob", balance=0)
        contract = SmartContract(
            address=CONTRACT_A,
            beneficiary="0xubob",
            condition=TransferCondition(
                kind="balance_below", subject="0xubob", threshold=1
            ),
        )
        assert contract.can_execute(state)
        state.account("0xubob").credit(5)
        assert not contract.can_execute(state)

    def test_invocation_counter(self):
        contract = SmartContract.unconditional(CONTRACT_A, "0xudest")
        contract.record_invocation()
        contract.record_invocation()
        assert contract.invocation_count == 2
