"""Tests for repro.chain.block."""

from repro.chain.block import GENESIS_PARENT, Block
from tests.conftest import make_call


def build_block(txs=(), height=1, parent=None, shard=1):
    return Block.build(
        parent_hash=parent or Block.genesis(shard).block_hash,
        miner="pk-miner",
        shard_id=shard,
        height=height,
        timestamp=12.5,
        transactions=list(txs),
    )


class TestGenesis:
    def test_genesis_parent_sentinel(self):
        genesis = Block.genesis()
        assert genesis.header.parent_hash == GENESIS_PARENT
        assert genesis.header.height == 0

    def test_genesis_per_shard_differs(self):
        assert Block.genesis(0).block_hash != Block.genesis(1).block_hash

    def test_genesis_is_empty(self):
        assert Block.genesis().is_empty


class TestBlock:
    def test_hash_is_deterministic(self):
        tx = make_call("0xua")
        a = build_block([tx])
        b = Block(header=a.header, transactions=a.transactions)
        assert a.block_hash == b.block_hash

    def test_hash_covers_transactions(self):
        a = build_block([make_call("0xua")])
        b = build_block([make_call("0xub")])
        assert a.block_hash != b.block_hash

    def test_hash_covers_miner(self):
        genesis_hash = Block.genesis(1).block_hash
        a = Block.build(genesis_hash, "pk-a", 1, 1, 0.0)
        b = Block.build(genesis_hash, "pk-b", 1, 1, 0.0)
        assert a.block_hash != b.block_hash

    def test_is_empty(self):
        assert build_block().is_empty
        assert not build_block([make_call("0xua")]).is_empty

    def test_total_fees(self):
        txs = [make_call("0xua", fee=3), make_call("0xub", fee=7)]
        assert build_block(txs).total_fees == 10

    def test_commits_to_body(self):
        block = build_block([make_call("0xua")])
        assert block.commits_to_body()

    def test_detects_body_tampering(self):
        block = build_block([make_call("0xua")])
        tampered = Block(
            header=block.header, transactions=(make_call("0xevil"),)
        )
        assert not tampered.commits_to_body()

    def test_detects_tx_removal(self):
        txs = [make_call("0xua"), make_call("0xub")]
        block = build_block(txs)
        truncated = Block(header=block.header, transactions=(txs[0],))
        assert not truncated.commits_to_body()

    def test_empty_block_commits(self):
        assert build_block().commits_to_body()
