"""Tests for repro.chain.fees."""

import pytest

from repro.chain.block import Block
from repro.chain.fees import FeePolicy
from tests.conftest import make_call


def block_with(txs):
    return Block.build(
        parent_hash=Block.genesis(1).block_hash,
        miner="pk",
        shard_id=1,
        height=1,
        timestamp=0.0,
        transactions=txs,
    )


class TestFeePolicy:
    def test_paper_gas_configuration(self):
        """0x300000 gas per block holds at most 10 transactions."""
        policy = FeePolicy()
        assert policy.gas_limit == 0x300000
        assert policy.block_capacity == 10

    def test_block_payout_includes_fees(self):
        policy = FeePolicy(block_reward=100)
        block = block_with([make_call("0xua", fee=3), make_call("0xub", fee=4)])
        assert policy.block_payout(block) == 107

    def test_empty_block_still_pays_block_reward(self):
        """Sec. III-D: 'even if the block does not contain any
        transactions, that miner can still get the block reward' — the
        incentive that makes empty blocks rational."""
        policy = FeePolicy(block_reward=100)
        assert policy.block_payout(block_with([])) == 100

    def test_merge_payout_respects_constraint(self):
        policy = FeePolicy(shard_reward=42)
        assert policy.merge_payout(merged_size=10, lower_bound=10) == 42
        assert policy.merge_payout(merged_size=9, lower_bound=10) == 0

    def test_invalid_gas_per_tx(self):
        policy = FeePolicy(gas_per_tx=0)
        with pytest.raises(ValueError):
            policy.block_capacity
