"""Tests for repro.chain.callgraph — the Fig. 1 sender patterns."""

from repro.chain.callgraph import CallGraph, SenderClass
from tests.conftest import CONTRACT_A, CONTRACT_B, make_call, make_transfer


class TestClassification:
    def test_unknown_sender(self):
        assert CallGraph().classify("0xghost") is SenderClass.UNKNOWN

    def test_fig1a_single_contract(self):
        """User A only sends through contract 1 — shardable."""
        graph = CallGraph()
        graph.observe(make_call("0xuA", CONTRACT_A))
        assert graph.classify("0xuA") is SenderClass.SINGLE_CONTRACT
        assert graph.is_single_contract("0xuA")

    def test_fig1b_multi_contract(self):
        """User C invokes contracts 1 and 2 — MaxShard."""
        graph = CallGraph()
        graph.observe(make_call("0xuC", CONTRACT_A))
        graph.observe(make_call("0xuC", CONTRACT_B, nonce=1))
        assert graph.classify("0xuC") is SenderClass.MULTI_CONTRACT
        assert not graph.is_single_contract("0xuC")

    def test_fig1c_direct_sender(self):
        """User F invokes contract 1 AND pays user H directly — MaxShard."""
        graph = CallGraph()
        graph.observe(make_call("0xuF", CONTRACT_A))
        graph.observe(make_transfer("0xuF", "0xuH", nonce=1))
        assert graph.classify("0xuF") is SenderClass.DIRECT_SENDER

    def test_pure_direct_sender(self):
        graph = CallGraph()
        graph.observe(make_transfer("0xuX", "0xuY"))
        assert graph.classify("0xuX") is SenderClass.DIRECT_SENDER

    def test_repeated_same_contract_stays_single(self):
        graph = CallGraph()
        for nonce in range(5):
            graph.observe(make_call("0xuA", CONTRACT_A, nonce=nonce))
        assert graph.classify("0xuA") is SenderClass.SINGLE_CONTRACT


class TestQueries:
    def test_contracts_of(self):
        graph = CallGraph()
        graph.observe(make_call("0xuC", CONTRACT_A))
        graph.observe(make_call("0xuC", CONTRACT_B, nonce=1))
        assert graph.contracts_of("0xuC") == {CONTRACT_A, CONTRACT_B}

    def test_contracts_of_unknown(self):
        assert CallGraph().contracts_of("0xghost") == set()

    def test_direct_peers_of(self):
        graph = CallGraph()
        graph.observe(make_transfer("0xuX", "0xuY"))
        assert graph.direct_peers_of("0xuX") == {"0xuY"}

    def test_sole_contract_of(self):
        graph = CallGraph()
        graph.observe(make_call("0xuA", CONTRACT_A))
        assert graph.sole_contract_of("0xuA") == CONTRACT_A

    def test_sole_contract_of_multi_is_none(self):
        graph = CallGraph()
        graph.observe(make_call("0xuC", CONTRACT_A))
        graph.observe(make_call("0xuC", CONTRACT_B, nonce=1))
        assert graph.sole_contract_of("0xuC") is None

    def test_recipient_of_direct_transfer_not_misclassified(self):
        """The transfer's recipient has not *sent* anything; receiving a
        direct payment marks her as a direct participant (she now shares
        state with the sender), matching the MaxShard routing rule."""
        graph = CallGraph()
        graph.observe(make_transfer("0xuX", "0xuY"))
        assert graph.classify("0xuY") is SenderClass.DIRECT_SENDER


class TestStatistics:
    def test_counts(self):
        graph = CallGraph()
        graph.observe(make_call("0xuA", CONTRACT_A))
        graph.observe(make_call("0xuB", CONTRACT_B))
        graph.observe(make_transfer("0xuX", "0xuY"))
        assert graph.contract_count() == 2
        assert graph.user_count() == 4

    def test_histogram(self):
        graph = CallGraph()
        graph.observe(make_call("0xuA", CONTRACT_A))
        graph.observe(make_call("0xuC", CONTRACT_A))
        graph.observe(make_call("0xuC", CONTRACT_B, nonce=1))
        histogram = graph.classification_histogram()
        assert histogram[SenderClass.SINGLE_CONTRACT] == 1
        assert histogram[SenderClass.MULTI_CONTRACT] == 1
