"""Tests for repro.chain.state."""

import pytest

from repro.chain.contract import SmartContract, TransferCondition
from repro.chain.state import WorldState
from repro.errors import (
    InsufficientBalanceError,
    NonceError,
    UnknownAccountError,
    UnknownContractError,
    ValidationError,
)
from tests.conftest import CONTRACT_A, make_call, make_transfer


class TestAccounts:
    def test_create_account(self, world):
        assert world.balance_of("0xualice") == 1_000

    def test_create_is_idempotent(self, world):
        account = world.create_account("0xualice", balance=5)
        assert account.balance == 1_000  # existing account untouched

    def test_unknown_account_raises(self, world):
        with pytest.raises(UnknownAccountError):
            world.account("0xghost")

    def test_unknown_contract_raises(self, world):
        with pytest.raises(UnknownContractError):
            world.contract("0xghost")

    def test_balance_of_unknown_is_zero(self, world):
        assert world.balance_of("0xghost") == 0


class TestDirectTransfer:
    def test_moves_value(self, world):
        world.apply_transaction(make_transfer("0xualice", "0xubob", amount=10, fee=2))
        assert world.balance_of("0xualice") == 988
        assert world.balance_of("0xubob") == 1_010

    def test_bumps_nonce(self, world):
        world.apply_transaction(make_transfer("0xualice", "0xubob"))
        assert world.account("0xualice").nonce == 1

    def test_fee_paid_to_miner(self, world):
        world.apply_transaction(
            make_transfer("0xualice", "0xubob", fee=7), miner="pk-m"
        )
        assert world.balance_of("pk-m") == 7

    def test_creates_recipient_account(self, world):
        world.apply_transaction(make_transfer("0xualice", "0xunew", amount=3))
        assert world.balance_of("0xunew") == 3

    def test_supply_conserved_with_miner(self, world):
        before = world.total_supply()
        world.apply_transaction(
            make_transfer("0xualice", "0xubob", amount=10, fee=5), miner="pk-m"
        )
        assert world.total_supply() == before


class TestContractCall:
    def test_routes_to_beneficiary(self, world):
        world.apply_transaction(make_call("0xualice", CONTRACT_A, amount=10))
        assert world.balance_of("0xudest-a") == 10

    def test_records_invocation(self, world):
        world.apply_transaction(make_call("0xualice", CONTRACT_A))
        assert world.contract(CONTRACT_A).invocation_count == 1

    def test_condition_blocks_execution(self, world):
        conditional = SmartContract(
            address="0xc" + "f" * 39,
            beneficiary="0xubob",
            condition=TransferCondition(
                kind="balance_below", subject="0xubob", threshold=1
            ),
        )
        world.deploy_contract(conditional)
        tx = make_call("0xualice", conditional.address)
        with pytest.raises(ValidationError):
            world.apply_transaction(tx)


class TestValidationFailures:
    def test_wrong_nonce_rejected(self, world):
        with pytest.raises(NonceError):
            world.apply_transaction(make_transfer("0xualice", "0xubob", nonce=5))

    def test_overdraft_rejected(self, world):
        with pytest.raises(InsufficientBalanceError):
            world.apply_transaction(
                make_transfer("0xualice", "0xubob", amount=10_000)
            )

    def test_fee_counts_toward_cost(self, world):
        world.account("0xualice").balance = 10
        with pytest.raises(InsufficientBalanceError):
            world.apply_transaction(
                make_transfer("0xualice", "0xubob", amount=8, fee=3)
            )

    def test_failed_tx_leaves_state_untouched(self, world):
        try:
            world.apply_transaction(
                make_transfer("0xualice", "0xubob", amount=10_000)
            )
        except InsufficientBalanceError:
            pass
        assert world.balance_of("0xualice") == 1_000
        assert world.account("0xualice").nonce == 0

    def test_can_apply_mirrors_apply(self, world):
        good = make_transfer("0xualice", "0xubob")
        bad = make_transfer("0xualice", "0xubob", nonce=9)
        assert world.can_apply(good)
        assert not world.can_apply(bad)


class TestBlockBody:
    def test_sequential_nonces_apply(self, world):
        txs = (
            make_transfer("0xualice", "0xubob", nonce=0),
            make_transfer("0xualice", "0xubob", nonce=1),
        )
        rejected = world.apply_block_body(txs, miner="pk-m")
        assert rejected == []
        assert world.account("0xualice").nonce == 2

    def test_double_spend_rejected_within_body(self, world):
        tx = make_transfer("0xualice", "0xubob", nonce=0)
        rejected = world.apply_block_body((tx, tx), miner="pk-m")
        assert len(rejected) == 1


class TestSnapshot:
    def test_snapshot_is_deep(self, world):
        snap = world.snapshot()
        snap.apply_transaction(make_transfer("0xualice", "0xubob", amount=100))
        assert world.balance_of("0xualice") == 1_000
        assert snap.balance_of("0xualice") < 1_000

    def test_snapshot_copies_contracts(self, world):
        snap = world.snapshot()
        snap.contract(CONTRACT_A).record_invocation()
        assert world.contract(CONTRACT_A).invocation_count == 0


class TestBlockUndoJournal:
    """Journaled apply + revert must be an exact round trip."""

    def test_apply_revert_round_trip(self, world):
        from repro.chain.state import BlockUndo

        before = world.fingerprint()
        undo = BlockUndo()
        body = (
            make_transfer("0xualice", "0xubob", amount=10, fee=2),
            make_call("0xubob", fee=5),
            make_transfer("0xualice", "0xunew", amount=3, fee=1, nonce=1),
        )
        rejected = world.apply_block_body(body, miner="pk-m", journal=undo)
        assert rejected == []
        assert world.fingerprint() != before
        world.revert_block_body(undo)
        assert world.fingerprint() == before

    def test_revert_deletes_created_accounts(self, world):
        from repro.chain.state import BlockUndo

        undo = BlockUndo()
        world.apply_block_body(
            (make_transfer("0xualice", "0xufresh", amount=3),),
            miner="pk-new-miner",
            journal=undo,
        )
        assert world.has_account("0xufresh")
        assert world.has_account("pk-new-miner")
        world.revert_block_body(undo)
        assert not world.has_account("0xufresh")
        assert not world.has_account("pk-new-miner")

    def test_revert_restores_contract_invocations(self, world):
        from repro.chain.state import BlockUndo

        undo = BlockUndo()
        world.apply_block_body(
            (make_call("0xualice", fee=2),), miner="pk-m", journal=undo
        )
        assert world.contract(CONTRACT_A).invocation_count == 1
        world.revert_block_body(undo)
        assert world.contract(CONTRACT_A).invocation_count == 0

    def test_journal_snapshots_first_touch_only(self, world):
        from repro.chain.state import BlockUndo

        undo = BlockUndo()
        body = (
            make_transfer("0xualice", "0xubob", amount=10, fee=1),
            make_transfer("0xualice", "0xubob", amount=10, fee=1, nonce=1),
        )
        before = world.fingerprint()
        world.apply_block_body(body, miner="pk-m", journal=undo)
        # One snapshot per touched address, taken before the first write.
        assert undo.accounts["0xualice"] == (1_000, 0)
        assert undo.accounts["0xubob"] == (1_000, 0)
        world.revert_block_body(undo)
        assert world.fingerprint() == before

    def test_failed_transaction_leaves_no_journal_entry(self, world):
        from repro.chain.state import BlockUndo

        undo = BlockUndo()
        bad = make_transfer("0xualice", "0xubob", amount=10_000)
        rejected = world.apply_block_body((bad,), miner="pk-m", journal=undo)
        assert rejected == [bad]
        assert undo.accounts == {}
        assert undo.contracts == {}


class TestFingerprint:
    def test_stable_across_insertion_order(self):
        a, b = WorldState(), WorldState()
        a.create_account("0xux", balance=5)
        a.create_account("0xuy", balance=7)
        b.create_account("0xuy", balance=7)
        b.create_account("0xux", balance=5)
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_balances(self, world):
        before = world.fingerprint()
        world.account("0xualice").credit(1)
        assert world.fingerprint() != before
