"""Tests for repro.chain.mempool."""

import pytest

from repro.chain.mempool import Mempool
from tests.conftest import make_call


class TestBasics:
    def test_add_and_len(self):
        pool = Mempool()
        assert pool.add(make_call("0xua"))
        assert len(pool) == 1

    def test_add_duplicate_refused(self):
        pool = Mempool()
        tx = make_call("0xua")
        assert pool.add(tx)
        assert not pool.add(tx)
        assert len(pool) == 1

    def test_add_many_counts_new(self):
        pool = Mempool()
        tx = make_call("0xua")
        assert pool.add_many([tx, tx, make_call("0xub")]) == 2

    def test_contains(self):
        pool = Mempool()
        tx = make_call("0xua")
        pool.add(tx)
        assert tx.tx_id in pool

    def test_remove(self):
        pool = Mempool()
        tx = make_call("0xua")
        pool.add(tx)
        assert pool.remove(tx.tx_id) == tx
        assert pool.remove(tx.tx_id) is None

    def test_remove_confirmed(self):
        pool = Mempool()
        txs = [make_call(f"0xu{i}") for i in range(5)]
        pool.add_many(txs)
        confirmed = {txs[0].tx_id, txs[1].tx_id, "not-present"}
        assert pool.remove_confirmed(confirmed) == 2
        assert len(pool) == 3

    def test_clear(self):
        pool = Mempool()
        pool.add(make_call("0xua"))
        pool.clear()
        assert len(pool) == 0

    def test_total_fees(self):
        pool = Mempool()
        pool.add_many([make_call("0xua", fee=3), make_call("0xub", fee=4)])
        assert pool.total_fees() == 7


class TestFeeGreedySelection:
    def test_orders_by_fee_desc(self):
        pool = Mempool()
        low = make_call("0xua", fee=1)
        high = make_call("0xub", fee=9)
        mid = make_call("0xuc", fee=5)
        pool.add_many([low, high, mid])
        assert pool.select_by_fee(3) == [high, mid, low]

    def test_limit_respected(self):
        pool = Mempool()
        pool.add_many([make_call(f"0xu{i}", fee=i) for i in range(10)])
        assert len(pool.select_by_fee(4)) == 4

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Mempool().select_by_fee(-1)

    def test_all_miners_pick_the_same_set(self):
        """The Sec. II-B pathology: greedy selection is identical across
        independent mempools holding the same transactions."""
        txs = [make_call(f"0xu{i}", fee=i % 7) for i in range(20)]
        pool_a, pool_b = Mempool(), Mempool()
        pool_a.add_many(txs)
        pool_b.add_many(list(reversed(txs)))
        ids_a = [tx.tx_id for tx in pool_a.select_by_fee(10)]
        ids_b = [tx.tx_id for tx in pool_b.select_by_fee(10)]
        assert ids_a == ids_b

    def test_selection_does_not_remove(self):
        pool = Mempool()
        pool.add(make_call("0xua"))
        pool.select_by_fee(1)
        assert len(pool) == 1


class TestIdSelection:
    def test_select_ids_skips_missing(self):
        pool = Mempool()
        present = make_call("0xua")
        pool.add(present)
        selected = pool.select_ids([present.tx_id, "gone"])
        assert selected == [present]

    def test_select_ids_preserves_order(self):
        pool = Mempool()
        txs = [make_call(f"0xu{i}") for i in range(3)]
        pool.add_many(txs)
        ids = [txs[2].tx_id, txs[0].tx_id]
        assert pool.select_ids(ids) == [txs[2], txs[0]]


class TestCachedRankedView:
    """The fee-ranked cache vs. the full-sort oracle, differentially."""

    def test_differential_random_workload(self):
        import random

        rng = random.Random(31)
        cached = Mempool(fee_cache=True)
        txs = [make_call(f"0xu{i}", fee=rng.randrange(1, 50)) for i in range(80)]
        for tx in txs:
            cached.add(tx)
            # Interleave selections, removals and re-adds so the cache
            # goes through build, insort, stale-skip and compaction.
            if rng.random() < 0.4:
                limit = rng.randrange(0, 20)
                assert cached.select_by_fee(limit) == (
                    cached.select_by_fee_sorted(limit)
                )
            if rng.random() < 0.3 and len(cached):
                victims = rng.sample(list(cached.pending()), k=1)
                cached.remove(victims[0].tx_id)
        assert cached.select_by_fee(100) == cached.select_by_fee_sorted(100)

    def test_cache_survives_bulk_confirmation(self):
        pool = Mempool()
        txs = [make_call(f"0xu{i}", fee=i) for i in range(30)]
        pool.add_many(txs)
        pool.select_by_fee(5)  # build the cache
        pool.remove_confirmed({tx.tx_id for tx in txs[:20]})
        assert pool.select_by_fee(30) == pool.select_by_fee_sorted(30)

    def test_fee_cache_disabled_uses_sort(self):
        pool = Mempool(fee_cache=False)
        txs = [make_call(f"0xu{i}", fee=i) for i in range(10)]
        pool.add_many(txs)
        assert pool._ranked is None
        assert pool.select_by_fee(5) == pool.select_by_fee_sorted(5)
        assert pool._ranked is None  # never built

    def test_add_after_cache_built_keeps_order(self):
        pool = Mempool()
        pool.add_many([make_call(f"0xu{i}", fee=i) for i in range(10)])
        pool.select_by_fee(3)
        pool.add(make_call("0xnew", fee=100))
        assert pool.select_by_fee(1)[0].fee == 100
        assert pool.select_by_fee(11) == pool.select_by_fee_sorted(11)
