"""Tests for repro.chain.transaction."""

import pytest

from repro.chain.transaction import Transaction, TransactionKind
from tests.conftest import CONTRACT_A, make_call, make_transfer


class TestConstruction:
    def test_contract_call_requires_contract(self):
        with pytest.raises(ValueError, match="contract"):
            Transaction(
                sender="0xua",
                recipient="0xub",
                amount=1,
                fee=1,
                kind=TransactionKind.CONTRACT_CALL,
            )

    def test_direct_transfer_rejects_contract(self):
        with pytest.raises(ValueError):
            Transaction(
                sender="0xua",
                recipient="0xub",
                amount=1,
                fee=1,
                kind=TransactionKind.DIRECT_TRANSFER,
                contract=CONTRACT_A,
            )

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            make_transfer("0xua", "0xub", amount=-1)

    def test_negative_fee_rejected(self):
        with pytest.raises(ValueError):
            make_transfer("0xua", "0xub", fee=-1)

    def test_zero_amount_allowed(self):
        tx = make_transfer("0xua", "0xub", amount=0)
        assert tx.amount == 0


class TestIdentity:
    def test_tx_ids_are_unique_even_for_identical_fields(self):
        a = make_call("0xua")
        b = make_call("0xua")
        assert a.tx_id != b.tx_id

    def test_tx_id_is_stable(self):
        tx = make_call("0xua")
        assert tx.tx_id == tx.tx_id

    def test_short_id_prefix(self):
        tx = make_call("0xua")
        assert tx.tx_id.startswith(tx.short_id())
        assert len(tx.short_id()) == 10


class TestViews:
    def test_input_accounts_default(self):
        tx = make_transfer("0xua", "0xub")
        assert tx.input_accounts == ("0xua",)

    def test_input_accounts_with_extras(self):
        tx = Transaction(
            sender="0xua",
            recipient="0xub",
            amount=1,
            fee=1,
            kind=TransactionKind.DIRECT_TRANSFER,
            extra_inputs=("0xuc", "0xud"),
        )
        assert tx.input_accounts == ("0xua", "0xuc", "0xud")

    def test_is_contract_call(self):
        assert make_call("0xua").is_contract_call
        assert not make_transfer("0xua", "0xub").is_contract_call

    def test_frozen(self):
        tx = make_call("0xua")
        with pytest.raises(AttributeError):
            tx.fee = 100
