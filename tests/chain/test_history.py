"""Tests for repro.chain.history, incl. differential testing vs CallGraph."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.callgraph import CallGraph, SenderClass
from repro.chain.history import TransactionHistory
from repro.workloads.generators import WorkloadBuilder
from tests.conftest import CONTRACT_A, CONTRACT_B, make_call, make_transfer


class TestHistoryClassification:
    def test_unknown(self):
        assert TransactionHistory().classify("0xghost") is SenderClass.UNKNOWN

    def test_single_contract(self):
        history = TransactionHistory()
        history.append(make_call("0xuA", CONTRACT_A))
        assert history.classify("0xuA") is SenderClass.SINGLE_CONTRACT
        assert history.sole_contract_of("0xuA") == CONTRACT_A

    def test_multi_contract(self):
        history = TransactionHistory()
        history.extend(
            [
                make_call("0xuC", CONTRACT_A),
                make_call("0xuC", CONTRACT_B, nonce=1),
            ]
        )
        assert history.classify("0xuC") is SenderClass.MULTI_CONTRACT
        assert history.sole_contract_of("0xuC") is None

    def test_direct_sender(self):
        history = TransactionHistory()
        history.append(make_transfer("0xuX", "0xuY"))
        assert history.classify("0xuX") is SenderClass.DIRECT_SENDER
        assert history.classify("0xuY") is SenderClass.DIRECT_SENDER

    def test_mixed_sender_is_direct(self):
        history = TransactionHistory()
        history.append(make_call("0xuF", CONTRACT_A))
        history.append(make_transfer("0xuF", "0xuH", nonce=1))
        assert history.classify("0xuF") is SenderClass.DIRECT_SENDER


class TestScanCostAccounting:
    def test_each_query_scans_everything(self):
        history = TransactionHistory()
        history.extend([make_call(f"0xu{i}", CONTRACT_A) for i in range(50)])
        history.classify("0xu0")
        history.classify("0xu1")
        assert history.scans_performed == 2
        assert history.mean_scan_cost() == 50.0

    def test_empty_history_costs_nothing(self):
        assert TransactionHistory().mean_scan_cost() == 0.0

    def test_cost_grows_with_history(self):
        """The Sec. III-C motivation for the call graph, measured."""
        short, long = TransactionHistory(), TransactionHistory()
        short.extend([make_call(f"0xus{i}", CONTRACT_A) for i in range(10)])
        long.extend([make_call(f"0xul{i}", CONTRACT_A) for i in range(1_000)])
        short.classify("0xus0")
        long.classify("0xul0")
        assert long.mean_scan_cost() == 100 * short.mean_scan_cost()


@st.composite
def random_traffic(draw):
    builder = WorkloadBuilder(seed=draw(st.integers(0, 10_000)))
    contracts = [CONTRACT_A, CONTRACT_B]
    txs = []
    for i in range(draw(st.integers(min_value=1, max_value=25))):
        sender = f"0xu{draw(st.integers(0, 5))}"
        if draw(st.booleans()):
            txs.append(
                builder.contract_call(sender, draw(st.sampled_from(contracts)), fee=1)
            )
        else:
            txs.append(builder.direct_transfer(sender, f"0xur{i}", fee=1))
    return txs


class TestDifferentialAgainstCallGraph:
    """The scan oracle and the call-graph index must always agree —
    the paper's 'pluggable' classification interfaces are interchangeable."""

    @given(random_traffic())
    @settings(max_examples=50, deadline=None)
    def test_classifications_agree(self, txs):
        history = TransactionHistory()
        graph = CallGraph()
        history.extend(txs)
        graph.observe_many(txs)
        senders = {tx.sender for tx in txs}
        for sender in senders:
            assert history.classify(sender) == graph.classify(sender), sender

    @given(random_traffic())
    @settings(max_examples=50, deadline=None)
    def test_sole_contract_agrees(self, txs):
        history = TransactionHistory()
        graph = CallGraph()
        history.extend(txs)
        graph.observe_many(txs)
        for sender in {tx.sender for tx in txs}:
            assert history.sole_contract_of(sender) == graph.sole_contract_of(sender)
