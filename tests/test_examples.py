"""Smoke tests: every shipped example runs end to end.

Examples are part of the public surface; they must keep working as the
library evolves. Each is executed in-process via runpy so failures carry
full tracebacks.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 4
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reports_improvement(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Throughput improvement" in out
    assert "MaxShard" in out


def test_adversarial_audit_rejects_cheaters(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "adversarial_audit.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "blocks rejected network-wide" in out
    assert "cheating block follows selection: False" in out
