"""Integration: the real assignment mechanism matches the security model.

Sec. III-B argues shard safety from a binomial model of malicious
membership; here we *run* the VRF/RandHound assignment over a population
containing adversarial identities and check that the empirical per-shard
malicious fractions behave as the closed form predicts — i.e. the
adversary gains nothing from the actual mechanism that the model missed.
"""

import statistics

import pytest

from repro.consensus.miner import MinerIdentity
from repro.core import security
from repro.core.miner_assignment import assign_miners


FRACTIONS = {0: 34.0, 1: 33.0, 2: 33.0}


def run_epochs(total_miners: int, malicious: int, epochs: int):
    """Assign a mixed population repeatedly; yield per-shard malicious counts."""
    miners = [MinerIdentity.create(f"sec-{i}") for i in range(total_miners)]
    malicious_keys = {m.public for m in miners[:malicious]}
    for epoch in range(epochs):
        assignment = assign_miners(miners, FRACTIONS, epoch_seed=f"sec-e{epoch}")
        for shard in FRACTIONS:
            members = assignment.members_of(shard)
            if members:
                bad = sum(1 for m in members if m in malicious_keys)
                yield shard, len(members), bad


class TestAssignmentMatchesSecurityModel:
    def test_malicious_fraction_tracks_population(self):
        """Per-shard malicious fractions concentrate near the global 25%."""
        samples = list(run_epochs(total_miners=90, malicious=22, epochs=40))
        fractions = [bad / size for __, size, bad in samples if size >= 10]
        assert statistics.mean(fractions) == pytest.approx(22 / 90, abs=0.03)

    def test_empirical_corruption_rate_matches_binomial(self):
        """The fraction of shards where the adversary got a majority is
        close to the Eq. (5)-style binomial prediction."""
        samples = list(run_epochs(total_miners=90, malicious=22, epochs=120))
        sized = [(size, bad) for __, size, bad in samples if size >= 15]
        corrupted = sum(1 for size, bad in sized if bad > size // 2)
        empirical = corrupted / len(sized)
        predictions = [
            security.shard_corruption_probability(size, 22 / 90)
            for size, __ in sized
        ]
        predicted = statistics.mean(predictions)
        assert empirical == pytest.approx(predicted, abs=0.02)

    def test_adversary_cannot_target_a_shard(self):
        """Across epochs the adversary's members spread over all shards —
        no shard is persistently hers."""
        miners = [MinerIdentity.create(f"target-{i}") for i in range(30)]
        villain = miners[0].public
        landed = set()
        for epoch in range(30):
            assignment = assign_miners(
                miners, FRACTIONS, epoch_seed=f"tgt-{epoch}"
            )
            landed.add(assignment.shard_of[villain])
        assert landed == set(FRACTIONS)
