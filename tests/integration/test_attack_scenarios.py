"""Adversarial scenarios exercised end to end.

Each test stages one of the attacks the paper's design claims to resist
and checks the defense actually fires in our implementation.
"""

import pytest

from repro.chain.contract import SmartContract
from repro.chain.state import WorldState
from repro.consensus.miner import MinerIdentity
from repro.core.miner_assignment import assign_miners, draw_shard
from repro.core.shard_formation import MAXSHARD_ID, form_shards, partition_transactions
from repro.crypto.randhound import RandHoundBeacon
from repro.errors import BeaconError, ValidationError
from repro.workloads.generators import WorkloadBuilder
from tests.conftest import CONTRACT_A, CONTRACT_B


class TestCrossShardDoubleSpend:
    """The Sec. II-B motivating attack: A funds 10, pays 8 in one shard,
    then tries to pay 3 'in another shard'. Under contract-centric
    sharding both payments classify the sender as a direct/multi
    participant, land in the MaxShard, and serialize against one state —
    the double spend dies on the balance check."""

    def test_multi_contract_spender_is_serialized_in_maxshard(self):
        builder = WorkloadBuilder(seed=1)
        tx1 = builder.contract_call("0xua", CONTRACT_A, fee=0, amount=8)
        tx2 = builder.contract_call("0xua", CONTRACT_B, fee=0, amount=3)
        shard_map, graph = form_shards([tx1, tx2])
        # Both route to the MaxShard: no pair of shards can validate them
        # against disjoint state copies.
        assert shard_map.shard_of_transaction(tx1, graph) == MAXSHARD_ID
        assert shard_map.shard_of_transaction(tx2, graph) == MAXSHARD_ID

    def test_double_spend_rejected_by_serial_state(self):
        builder = WorkloadBuilder(seed=2)
        tx1 = builder.direct_transfer("0xua", "0xub", fee=0, amount=8)
        tx2 = builder.direct_transfer("0xua", "0xuc", fee=0, amount=3)
        state = WorldState()
        state.create_account("0xua", balance=10)
        state.create_account("0xub")
        state.create_account("0xuc")
        state.apply_transaction(tx1)
        with pytest.raises(ValidationError):
            state.apply_transaction(tx2)
        assert state.balance_of("0xua") == 2  # only the first spend landed

    def test_single_contract_senders_cannot_conflict_across_shards(self):
        """The inverse guarantee: transactions that *do* land in distinct
        contract shards come from disjoint sender sets, so no account's
        balance is touched from two shards."""
        builder = WorkloadBuilder(seed=3)
        txs = [
            builder.contract_call(f"0xuA{i}", CONTRACT_A, fee=1) for i in range(5)
        ] + [
            builder.contract_call(f"0xuB{i}", CONTRACT_B, fee=1) for i in range(5)
        ]
        partition = partition_transactions(txs)
        senders_by_shard = {
            shard: {tx.sender for tx in shard_txs}
            for shard, shard_txs in partition.by_shard.items()
            if shard != MAXSHARD_ID and shard_txs
        }
        shards = list(senders_by_shard)
        assert len(shards) == 2
        assert not (senders_by_shard[shards[0]] & senders_by_shard[shards[1]])


class TestSybilAtAssignment:
    """Spawning identities does not let the adversary pick a shard: each
    new identity draws independently, so packing one shard requires
    winning independent draws — the Fig. 1(d) binomial regime."""

    def test_fresh_identities_draw_independently(self):
        fractions = {0: 34.0, 1: 33.0, 2: 33.0}
        randomness = "epoch-randomness"
        landed = [
            draw_shard(f"sybil-pk-{i}", randomness, fractions) for i in range(300)
        ]
        share = landed.count(0) / len(landed)
        # The adversary gets ~the fraction-proportional share, not a
        # chosen concentration.
        assert 0.25 < share < 0.45

    def test_grinding_requires_new_randomness(self):
        """With the epoch randomness fixed by the beacon, re-deriving the
        same identity never changes its shard."""
        fractions = {0: 50.0, 1: 50.0}
        first = draw_shard("grinder-pk", "fixed-randomness", fractions)
        for __ in range(10):
            assert draw_shard("grinder-pk", "fixed-randomness", fractions) == first


class TestLeaderEquivocation:
    """A malicious leader sending different packets to different miners
    is caught by comparing packet digests (Sec. IV-C's binding)."""

    def test_divergent_packets_have_divergent_digests(self):
        from dataclasses import replace

        from repro.core.merging.game import MergingGameConfig, ShardPlayer
        from repro.core.unification import UnificationPacket

        honest = UnificationPacket(
            epoch_seed="e",
            leader_public="pk-leader",
            randomness="r" * 64,
            merge_players=(ShardPlayer(1, 5, 2.0), ShardPlayer(2, 6, 2.0)),
            merge_config=MergingGameConfig(shard_reward=10.0, lower_bound=10),
        )
        # The leader tweaks one victim's view of the initial choices.
        forged = replace(honest, merge_initial=(0.9, 0.1))
        assert honest.digest() != forged.digest()

    def test_beacon_withholding_cannot_bias(self):
        """A participant who dislikes the upcoming randomness cannot
        silently drop out: withholding aborts the round loudly."""
        participants = [MinerIdentity.create(f"eq-{i}").keypair for i in range(4)]
        beacon = RandHoundBeacon(participants)
        with pytest.raises(BeaconError):
            beacon.run_round(withholders={participants[2].public})


class TestConditionalContractAbuse:
    """A contract condition cannot be bypassed by racing state: the
    condition is evaluated against the same serialized state that the
    transfer mutates."""

    def test_condition_window_closes_after_first_transfer(self):
        from repro.chain.contract import TransferCondition
        from repro.chain.transaction import Transaction, TransactionKind

        state = WorldState()
        state.create_account("0xualice", balance=100)
        state.create_account("0xubob", balance=0)
        contract = SmartContract(
            address=CONTRACT_A,
            beneficiary="0xubob",
            condition=TransferCondition(
                kind="balance_below", subject="0xubob", threshold=3
            ),
        )
        state.deploy_contract(contract)

        def call(nonce):
            return Transaction(
                sender="0xualice",
                recipient=CONTRACT_A,
                amount=5,
                fee=0,
                kind=TransactionKind.CONTRACT_CALL,
                contract=CONTRACT_A,
                nonce=nonce,
            )

        state.apply_transaction(call(0))  # bob: 0 -> 5, window closes
        with pytest.raises(ValidationError):
            state.apply_transaction(call(1))
        assert state.balance_of("0xubob") == 5
