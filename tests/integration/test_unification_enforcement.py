"""Integration: parameter unification enforces honest behavior.

The Sec. IV-C scenario end to end: a leader unifies the game inputs;
every miner replays locally; a miner deviating from the unified selection
or merge is caught by comparing her block against the replayed output.
"""

import pytest

from repro.chain.block import Block
from repro.consensus.miner import MinerIdentity
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.core.selection.congestion_game import SelectionGameConfig
from repro.core.unification import (
    ShardSelectionInput,
    UnificationPacket,
    UnifiedReplay,
)
from repro.crypto.randhound import RandHoundBeacon
from repro.crypto.vrf import elect_leader
from repro.workloads.generators import single_shard_workload


@pytest.fixture(scope="module")
def protocol_round():
    """One complete leader round: election, beacon, packet, replay."""
    miners = [MinerIdentity.create(f"uni-{i}") for i in range(4)]
    leader, proof = elect_leader([m.keypair for m in miners], "epoch-9")
    beacon = RandHoundBeacon([m.keypair for m in miners])
    randomness = beacon.run_round().randomness

    txs = single_shard_workload(12, seed=21)
    packet = UnificationPacket(
        epoch_seed="epoch-9",
        leader_public=leader.public,
        randomness=randomness,
        merge_players=tuple(ShardPlayer(i, 5, 2.0) for i in range(1, 6)),
        merge_config=MergingGameConfig(shard_reward=10.0, lower_bound=10, subslots=8),
        selection_inputs=(
            ShardSelectionInput(
                shard_id=1,
                tx_ids=tuple(tx.tx_id for tx in txs),
                fees=tuple(float(tx.fee) for tx in txs),
                miners=tuple(m.public for m in miners),
            ),
        ),
        selection_config=SelectionGameConfig(capacity=3),
    )
    return miners, txs, packet


def block_of(miner_public, txs):
    return Block.build(
        parent_hash=Block.genesis(1).block_hash,
        miner=miner_public,
        shard_id=1,
        height=1,
        timestamp=1.0,
        transactions=txs,
    )


class TestUnifiedRound:
    def test_all_miners_agree_on_everything(self, protocol_round):
        miners, __, packet = protocol_round
        replays = [UnifiedReplay(packet) for __ in miners]
        digests = {r.packet.digest() for r in replays}
        assert len(digests) == 1
        merge_maps = [r.merged_shard_map for r in replays]
        assert all(m == merge_maps[0] for m in merge_maps)
        for miner in miners:
            assignments = {
                tuple(r.assigned_tx_ids(1, miner.public)) for r in replays
            }
            assert len(assignments) == 1

    def test_honest_blocks_accepted_by_all(self, protocol_round):
        miners, txs, packet = protocol_round
        by_id = {tx.tx_id: tx for tx in txs}
        for miner in miners:
            replay = UnifiedReplay(packet)
            assigned = replay.assigned_tx_ids(1, miner.public)
            block = block_of(miner.public, [by_id[t] for t in assigned])
            for __ in miners:
                assert UnifiedReplay(packet).block_follows_selection(block)

    def test_greedy_deviator_caught(self, protocol_round):
        """A miner ignoring her assignment and grabbing the top fees is
        rejected unless greed happens to coincide with her assignment."""
        miners, txs, packet = protocol_round
        replay = UnifiedReplay(packet)
        greedy_picks = sorted(txs, key=lambda t: -t.fee)[:3]
        deviator = miners[0].public
        assigned = set(replay.assigned_tx_ids(1, deviator))
        block = block_of(deviator, greedy_picks)
        expected = all(tx.tx_id in assigned for tx in greedy_picks)
        assert replay.block_follows_selection(block) == expected

    def test_foreign_tx_always_caught(self, protocol_round):
        """Packing a transaction outside the unified input set is always
        detected, whoever packs it."""
        miners, __, packet = protocol_round
        replay = UnifiedReplay(packet)
        foreign_tx = single_shard_workload(1, seed=99)[0]
        for miner in miners:
            block = block_of(miner.public, [foreign_tx])
            assert not replay.block_follows_selection(block)

    def test_merge_shard_claims_verified(self, protocol_round):
        __, __, packet = protocol_round
        replay = UnifiedReplay(packet)
        for shard, merged_into in replay.merged_shard_map.items():
            assert replay.shard_claim_consistent_with_merge(shard, merged_into)
            wrong = merged_into + 1000
            assert not replay.shard_claim_consistent_with_merge(shard, wrong)

    def test_tampered_packet_changes_digest(self, protocol_round):
        miners, txs, packet = protocol_round
        from dataclasses import replace

        tampered = replace(packet, randomness="f" * 64)
        assert tampered.digest() != packet.digest()
