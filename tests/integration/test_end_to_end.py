"""End-to-end integration: workload -> sharding -> simulation -> metrics."""

import pytest

from repro.baselines.ethereum import run_ethereum
from repro.core.shard_formation import partition_transactions
from repro.experiments.common import run_sharded, specs_from_partition
from repro.sim.config import SimulationConfig, TimingModel
from repro.sim.metrics import throughput_improvement
from repro.sim.simulator import ShardedSimulation
from repro.workloads.generators import uniform_contract_workload

FAST = TimingModel.low_variance(interval=1.0, shape=48.0)


class TestShardingPipeline:
    def test_full_pipeline_improves_throughput(self):
        txs = uniform_contract_workload(total_txs=180, contract_shards=8, seed=1)
        ethereum = run_ethereum(
            txs, miner_count=9, config=SimulationConfig(timing=FAST, seed=2)
        )
        sharded = run_sharded(txs, config=SimulationConfig(timing=FAST, seed=3))
        improvement = throughput_improvement(ethereum.makespan, sharded.makespan)
        assert improvement > 3.0
        assert sharded.all_confirmed and ethereum.all_confirmed

    def test_sharded_run_confirms_exactly_the_workload(self):
        txs = uniform_contract_workload(total_txs=90, contract_shards=5, seed=4)
        result = run_sharded(txs, config=SimulationConfig(timing=FAST, seed=5))
        assert result.confirmed_transactions == 90
        assert result.total_transactions == 90

    def test_specs_cover_partition(self):
        txs = uniform_contract_workload(total_txs=60, contract_shards=3, seed=6)
        partition = partition_transactions(txs)
        specs = specs_from_partition(partition.by_shard, miners_per_shard=2)
        assert sum(len(s.transactions) for s in specs) == 60
        assert all(len(s.miners) == 2 for s in specs)

    def test_reproducible_end_to_end(self):
        txs = uniform_contract_workload(total_txs=60, contract_shards=3, seed=7)
        a = run_sharded(txs, config=SimulationConfig(timing=FAST, seed=8))
        b = run_sharded(txs, config=SimulationConfig(timing=FAST, seed=8))
        assert a.makespan == b.makespan
        assert a.total_empty_blocks == b.total_empty_blocks


class TestMergedPipeline:
    def test_merging_reduces_empty_blocks_end_to_end(self):
        """The full Fig. 3(c) pipeline on one seed."""
        from repro.experiments.common import merging_pipeline_once

        metrics = merging_pipeline_once(small_count=6, seed=11)
        assert metrics["empty_after"] < metrics["empty_before"]

    def test_merging_keeps_workload_confirmed(self):
        from repro.experiments.common import (
            MERGE_CONFIG,
            MERGE_TIMING,
            _merged_specs,
        )
        from repro.core.merging.algorithm import IterativeMerging
        from repro.core.merging.game import ShardPlayer
        from repro.workloads.generators import small_shard_workload

        txs, sizes = small_shard_workload(
            total_txs=100, shard_count=9, small_shard_sizes=[3, 4, 5], seed=12
        )
        partition = partition_transactions(txs)
        players = [ShardPlayer(sid, sizes[sid], 5.0) for sid in (1, 2, 3)]
        merge = IterativeMerging(MERGE_CONFIG, seed=13).run(players)
        specs = _merged_specs(
            partition.by_shard,
            [o.merged_shards for o in merge.new_shards if o.satisfied],
            [p.shard_id for p in merge.leftover_players],
            sweep_leftovers=True,
        )
        config = SimulationConfig(timing=MERGE_TIMING, seed=14)
        result = ShardedSimulation(specs, config=config).run()
        assert result.all_confirmed
        assert result.confirmed_transactions == 100
