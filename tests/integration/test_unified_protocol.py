"""Integration: the protocol simulator in full unification mode.

One run wires *everything* at the full-node level: VRF/beacon assignment,
call-graph routing, game-assigned selection behaviors, local replays, and
receive-side rejection of selection deviators.
"""

import pytest

from repro.consensus.miner import MinerIdentity, SelectionLiarBehavior
from repro.consensus.pow import PoWParameters
from repro.net.network import LatencyModel
from repro.sim.protocol import ProtocolConfig, ProtocolSimulation
from repro.workloads.generators import uniform_contract_workload

# Note the short horizon: under pure assigned behaviors the selection
# game's first epoch covers at most miners x capacity transactions, so a
# run cannot fully drain and would otherwise mine until max_duration.
QUICK = ProtocolConfig(
    pow_params=PoWParameters(difficulty=0x40000 // 60),  # ~1 s solo blocks
    latency=LatencyModel(base_seconds=0.01, jitter_seconds=0.01),
    max_duration=60.0,
    seed=31,
)


def build(behaviors=None, seed=31, miners=8):
    population = [MinerIdentity.create(f"unified-{seed}-{i}") for i in range(miners)]
    txs = uniform_contract_workload(total_txs=30, contract_shards=1, seed=seed)
    sim = ProtocolSimulation(
        population, txs, config=QUICK, behaviors=behaviors, unified=True
    )
    return population, sim


class TestUnifiedProtocol:
    def test_honest_unified_run_confirms_cleanly(self):
        __, sim = build()
        result = sim.run()
        assert result.confirmed_count() > 0
        assert result.blocks_rejected == 0

    def test_assigned_behaviors_installed(self):
        population, sim = build()
        from repro.consensus.miner import AssignedSelectionBehavior

        assigned_nodes = [
            sim.node(m.public)
            for m in population
            if isinstance(sim.node(m.public).behavior, AssignedSelectionBehavior)
        ]
        # Every multi-miner shard's members mine their assigned sets.
        assert assigned_nodes
        for node in assigned_nodes:
            assert node.behavior.assigned_tx_ids

    def test_selection_liar_rejected_network_wide(self):
        population, sim_probe = build(seed=77)
        # Find a miner that actually has an assignment to betray, and that
        # has at least one shard-mate to reject her blocks.
        liar = None
        for miner in population:
            node = sim_probe.node(miner.public)
            mates = [
                m
                for m in population
                if m.public != miner.public
                and sim_probe.node(m.public).shard_id == node.shard_id
            ]
            from repro.consensus.miner import AssignedSelectionBehavior

            if mates and isinstance(node.behavior, AssignedSelectionBehavior):
                liar = miner
                break
        if liar is None:
            pytest.skip("draw produced no multi-miner shard for this seed")

        __, sim = build(
            behaviors={liar.public: SelectionLiarBehavior()}, seed=77
        )
        result = sim.run()
        assert result.blocks_rejected > 0
        assert any("unified" in r for r in result.rejection_reasons)
