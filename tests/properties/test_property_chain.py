"""Property-based tests on the chain substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.chain.mempool import Mempool
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction, TransactionKind
from repro.errors import ValidationError


amounts = st.integers(min_value=0, max_value=50)
fees = st.integers(min_value=0, max_value=20)


@st.composite
def transfer_batches(draw):
    """A batch of transfers between a fixed user population."""
    users = [f"0xu{i}" for i in range(4)]
    count = draw(st.integers(min_value=1, max_value=12))
    nonces = {u: 0 for u in users}
    txs = []
    for __ in range(count):
        sender = draw(st.sampled_from(users))
        recipient = draw(st.sampled_from([u for u in users if u != sender]))
        tx = Transaction(
            sender=sender,
            recipient=recipient,
            amount=draw(amounts),
            fee=draw(fees),
            kind=TransactionKind.DIRECT_TRANSFER,
            nonce=nonces[sender],
        )
        nonces[sender] += 1
        txs.append(tx)
    return txs


class TestStateProperties:
    @given(transfer_batches())
    @settings(max_examples=50, deadline=None)
    def test_supply_conserved_with_miner(self, txs):
        state = WorldState()
        for user in {tx.sender for tx in txs} | {tx.recipient for tx in txs}:
            state.create_account(user, balance=1_000)
        supply_before = state.total_supply()
        for tx in txs:
            try:
                state.apply_transaction(tx, miner="pk-m")
            except ValidationError:
                pass
        assert state.total_supply() == supply_before

    @given(transfer_batches())
    @settings(max_examples=50, deadline=None)
    def test_balances_never_negative(self, txs):
        state = WorldState()
        for user in {tx.sender for tx in txs} | {tx.recipient for tx in txs}:
            state.create_account(user, balance=30)
        for tx in txs:
            try:
                state.apply_transaction(tx, miner="pk-m")
            except ValidationError:
                pass
        assert all(acc.balance >= 0 for acc in state.accounts.values())

    @given(transfer_batches())
    @settings(max_examples=50, deadline=None)
    def test_nonces_match_confirmed_tx_count(self, txs):
        state = WorldState()
        for user in {tx.sender for tx in txs} | {tx.recipient for tx in txs}:
            state.create_account(user, balance=10_000)
        applied: dict[str, int] = {}
        for tx in txs:
            try:
                state.apply_transaction(tx)
            except ValidationError:
                continue
            applied[tx.sender] = applied.get(tx.sender, 0) + 1
        for sender, count in applied.items():
            assert state.account(sender).nonce == count


class TestLedgerProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=25),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_fork_insertion_keeps_invariants(self, parent_picks):
        """Insert blocks onto randomly chosen known parents; the head must
        always be a deepest block and the canonical chain must be
        parent-linked."""
        ledger = Ledger()
        known = [ledger.head_hash]
        heights = {ledger.head_hash: 0}
        for i, pick in enumerate(parent_picks):
            parent = known[pick % len(known)]
            block = Block.build(
                parent_hash=parent,
                miner=f"pk{i}",
                shard_id=0,
                height=heights[parent] + 1,
                timestamp=float(i),
            )
            ledger.add_block(block)
            known.append(block.block_hash)
            heights[block.block_hash] = heights[parent] + 1

        assert ledger.height == max(heights.values())
        chain = ledger.canonical_chain()
        for parent_block, child in zip(chain, chain[1:]):
            assert child.header.parent_hash == parent_block.block_hash
        # Stale + canonical(non-genesis counted via entries) == inserted + genesis
        assert ledger.count_stale_blocks() + len(chain) == len(known)


class TestMempoolProperties:
    @given(st.lists(st.integers(min_value=0, max_value=99), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_greedy_selection_sorted_and_stable(self, fee_values):
        pool = Mempool()
        for i, fee in enumerate(fee_values):
            pool.add(
                Transaction(
                    sender=f"0xu{i}",
                    recipient="0xur",
                    amount=0,
                    fee=fee,
                    kind=TransactionKind.DIRECT_TRANSFER,
                )
            )
        selected = pool.select_by_fee(10)
        observed = [tx.fee for tx in selected]
        assert observed == sorted(observed, reverse=True)
        if len(fee_values) > 10:
            # Nothing outside the selection beats anything inside it.
            leftover_max = max(
                (tx.fee for tx in pool.pending() if tx not in selected),
                default=-1,
            )
            assert all(fee >= leftover_max for fee in observed)
