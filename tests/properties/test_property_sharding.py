"""Property-based tests on shard formation, assignment and unification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.miner import MinerIdentity
from repro.core.miner_assignment import assign_miners, draw_shard, verify_membership
from repro.core.shard_formation import MAXSHARD_ID, form_shards, partition_transactions
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.core.unification import UnificationPacket, UnifiedReplay
from repro.workloads.generators import WorkloadBuilder


@st.composite
def mixed_workloads(draw):
    """Random mixes of the three Fig. 1 sender patterns."""
    builder = WorkloadBuilder(seed=draw(st.integers(0, 1_000)))
    contracts = [f"0xc{i:039d}" for i in range(1, 4)]
    txs = []
    pattern_choices = draw(
        st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=25)
    )
    for i, pattern in enumerate(pattern_choices):
        if pattern == 0:  # single-contract sender
            txs.append(builder.contract_call(f"0xusc{i}", contracts[i % 3], fee=1))
        elif pattern == 1:  # multi-contract sender
            sender = f"0xumc{i}"
            txs.append(builder.contract_call(sender, contracts[0], fee=1))
            txs.append(builder.contract_call(sender, contracts[1], fee=1))
        else:  # direct sender
            txs.append(builder.direct_transfer(f"0xuds{i}", f"0xudst{i}", fee=1))
    return txs


class TestShardFormationProperties:
    @given(mixed_workloads())
    @settings(max_examples=40, deadline=None)
    def test_partition_is_exact(self, txs):
        partition = partition_transactions(txs)
        flattened = [tx.tx_id for shard in partition.by_shard.values() for tx in shard]
        assert sorted(flattened) == sorted(tx.tx_id for tx in txs)

    @given(mixed_workloads())
    @settings(max_examples=40, deadline=None)
    def test_non_maxshard_txs_are_single_contract(self, txs):
        shard_map, graph = form_shards(txs)
        partition = partition_transactions(txs, shard_map, graph)
        for shard, shard_txs in partition.by_shard.items():
            if shard == MAXSHARD_ID:
                continue
            for tx in shard_txs:
                assert graph.is_single_contract(tx.sender)
                assert tx.is_contract_call

    @given(mixed_workloads())
    @settings(max_examples=40, deadline=None)
    def test_fractions_normalize(self, txs):
        partition = partition_transactions(txs)
        total = sum(partition.fractions().values())
        assert abs(total - 100.0) < 1e-6 or partition.total_transactions == 0


class TestAssignmentProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.dictionaries(
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=6,
        ),
        st.text(min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_assignment_verifiable_and_total(self, n_miners, fractions, epoch):
        miners = [MinerIdentity.create(f"prop-{epoch}-{i}") for i in range(n_miners)]
        assignment = assign_miners(miners, fractions, epoch_seed=epoch)
        for miner in miners:
            shard = assignment.shard_of[miner.public]
            assert shard in fractions
            assert verify_membership(
                miner.public, shard, assignment.randomness, fractions
            )

    @given(st.text(min_size=1, max_size=12), st.text(min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_draw_deterministic(self, public, randomness):
        fractions = {0: 50.0, 1: 50.0}
        assert draw_shard(public, randomness, fractions) == draw_shard(
            public, randomness, fractions
        )


class TestSerializationProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_wire_round_trip_preserves_digest(self, sizes, nonce):
        from repro.core.merging.game import MergingGameConfig
        from repro.core.serialization import packet_from_json, packet_to_json

        packet = UnificationPacket(
            epoch_seed=f"e{nonce}",
            leader_public=f"pk-{nonce}",
            randomness=f"{nonce:064d}",
            merge_players=tuple(
                ShardPlayer(i, s, 2.0) for i, s in enumerate(sizes, start=1)
            ),
            merge_config=MergingGameConfig(shard_reward=10.0, lower_bound=10),
        )
        decoded = packet_from_json(packet_to_json(packet))
        assert decoded == packet
        assert decoded.digest() == packet.digest()


class TestUnificationProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=9), min_size=2, max_size=10),
        st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_replay_equality(self, sizes, nonce):
        players = tuple(
            ShardPlayer(i, s, 2.0) for i, s in enumerate(sizes, start=1)
        )
        packet = UnificationPacket(
            epoch_seed=f"epoch-{nonce}",
            leader_public="pk-leader",
            randomness=f"rand-{nonce}" + "0" * 50,
            merge_players=players,
            merge_config=MergingGameConfig(shard_reward=10.0, lower_bound=10, subslots=8),
        )
        maps = {UnifiedReplay(packet).merged_shard_map == UnifiedReplay(packet).merged_shard_map}
        assert maps == {True}
        replay = UnifiedReplay(packet)
        mapping = replay.merged_shard_map
        # The merged-shard map is idempotent: mapping a representative
        # returns itself.
        for target in set(mapping.values()):
            assert mapping[target] == target
