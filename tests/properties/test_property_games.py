"""Property-based tests on the game-theoretic core (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merging.algorithm import IterativeMerging, OneTimeMerge
from repro.core.merging.equilibrium import expected_payoffs, is_pure_nash
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.core.selection.best_reply import BestReplyDynamics
from repro.core.selection.congestion_game import (
    SelectionGameConfig,
    is_selection_nash,
    rosenthal_potential,
    selection_counts,
)

MERGE_CONFIG = MergingGameConfig(
    shard_reward=10.0, lower_bound=10, subslots=8, max_slots=120
)

sizes_strategy = st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=12)
fees_strategy = st.lists(
    st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


def players_of(sizes):
    return [ShardPlayer(i, s, 2.0) for i, s in enumerate(sizes, start=1)]


class TestMergingProperties:
    @given(sizes_strategy, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_one_time_merge_invariants(self, sizes, seed):
        players = players_of(sizes)
        outcome = OneTimeMerge(MERGE_CONFIG, seed=seed).run(players)
        # Probabilities clamped, partition exact, size accounting correct.
        floor = MERGE_CONFIG.probability_floor
        assert all(floor <= p <= 1 - floor for p in outcome.probabilities)
        merged, staying = set(outcome.merged_shards), set(outcome.staying_shards)
        assert merged | staying == {p.shard_id for p in players}
        assert not merged & staying
        assert outcome.merged_size == sum(
            p.size for p in players if p.shard_id in merged
        )
        # Satisfaction flag is consistent with the constraint.
        assert outcome.satisfied == (outcome.merged_size >= MERGE_CONFIG.lower_bound)
        # If the population can satisfy (1), the realization does.
        if sum(sizes) >= MERGE_CONFIG.lower_bound:
            assert outcome.satisfied

    @given(sizes_strategy, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_iterative_merging_invariants(self, sizes, seed):
        players = players_of(sizes)
        result = IterativeMerging(MERGE_CONFIG, seed=seed).run(players)
        # Every formed shard satisfies the bound; players conserved.
        assert all(o.merged_size >= MERGE_CONFIG.lower_bound for o in result.new_shards)
        merged_ids = [sid for o in result.new_shards for sid in o.merged_shards]
        leftover_ids = [p.shard_id for p in result.leftover_players]
        assert sorted(merged_ids + leftover_ids) == sorted(
            p.shard_id for p in players
        )
        # Leftovers genuinely cannot form another shard.
        leftover_total = sum(p.size for p in result.leftover_players)
        assert (
            leftover_total < MERGE_CONFIG.lower_bound
            or len(result.leftover_players) < 2
            or not result.new_shards  # dynamics gave up honestly
        )

    @given(
        sizes_strategy,
        st.lists(st.booleans(), min_size=1, max_size=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_payoff_table_bounds(self, sizes, raw_profile):
        players = players_of(sizes)
        profile = (raw_profile * len(players))[: len(players)]
        payoffs = expected_payoffs(players, profile, MERGE_CONFIG)
        G = MERGE_CONFIG.shard_reward
        for player, merges, payoff in zip(players, profile, payoffs):
            assert -player.cost <= payoff <= G
            if not merges:
                assert payoff in (0.0, G)

    @given(sizes_strategy)
    @settings(max_examples=30, deadline=None)
    def test_all_stay_is_nash_unless_a_loner_suffices(self, sizes):
        players = players_of(sizes)
        profile = [False] * len(players)
        loner_suffices = any(s >= MERGE_CONFIG.lower_bound for s in sizes)
        assert is_pure_nash(players, profile, MERGE_CONFIG) == (not loner_suffices)


class TestSelectionProperties:
    @given(
        fees_strategy,
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_best_reply_reaches_nash(self, fees, miners, seed):
        dynamics = BestReplyDynamics(SelectionGameConfig(capacity=1), seed=seed)
        outcome = dynamics.run(fees, miners=miners)
        assert outcome.converged
        assert is_selection_nash(np.asarray(outcome.fees), list(outcome.profile))

    @given(
        fees_strategy,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_set_selection_invariants(self, fees, miners, capacity, seed):
        dynamics = BestReplyDynamics(SelectionGameConfig(capacity=capacity), seed=seed)
        outcome = dynamics.run(fees, miners=miners)
        effective_capacity = min(capacity, len(fees))
        for chosen in outcome.profile:
            assert len(chosen) <= effective_capacity
            assert len(set(chosen)) == len(chosen)  # no duplicates in a set
            assert all(0 <= j < len(fees) for j in chosen)
        assert 1 <= outcome.distinct_set_count() <= miners

    @given(
        fees_strategy,
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_potential_never_below_start(self, fees, miners, seed):
        """Best replies only raise the Rosenthal potential, so the final
        potential is at least the initial one."""
        config = SelectionGameConfig(capacity=1)
        dynamics = BestReplyDynamics(config, seed=seed)
        fees_arr = np.asarray(fees, dtype=np.float64)
        initial = [(0,)] * miners  # everyone on tx 0
        outcome = dynamics.run(fees, miners=miners, initial_profile=initial)
        phi_start = rosenthal_potential(
            fees_arr, selection_counts(len(fees), initial)
        )
        assert outcome.potential() >= phi_start - 1e-9
