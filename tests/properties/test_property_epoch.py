"""Property-based tests for the epoch orchestrator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.miner import MinerIdentity
from repro.core.epoch import EpochManager
from repro.workloads.generators import WorkloadBuilder

MINERS = [MinerIdentity.create(f"prop-epoch-{i}") for i in range(16)]


@st.composite
def epoch_workloads(draw):
    """Random mixes of shardable and MaxShard traffic."""
    builder = WorkloadBuilder(seed=draw(st.integers(0, 5_000)))
    txs = []
    for i in range(draw(st.integers(min_value=3, max_value=30))):
        pattern = draw(st.integers(0, 2))
        contract = f"0xc{draw(st.integers(1, 4)):039d}"
        if pattern == 0:
            txs.append(builder.contract_call(f"0xus{i}", contract, fee=1 + i % 9))
        elif pattern == 1:
            sender = f"0xum{i}"
            txs.append(builder.contract_call(sender, f"0xc{1:039d}", fee=2))
            txs.append(builder.contract_call(sender, f"0xc{2:039d}", fee=2))
        else:
            txs.append(builder.direct_transfer(f"0xud{i}", f"0xur{i}", fee=3))
    return txs


class TestEpochProperties:
    @given(epoch_workloads(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_specs_conserve_workload_minus_deferrals(self, txs, epoch_index):
        plan = EpochManager(MINERS).run_epoch(epoch_index, txs)
        spec_txs = sum(len(s.transactions) for s in plan.to_specs())
        deferred = len(plan.deferred_transactions())
        assert spec_txs + deferred == len(txs)

    @given(epoch_workloads(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_no_transaction_duplicated_across_specs(self, txs, epoch_index):
        plan = EpochManager(MINERS).run_epoch(epoch_index, txs)
        ids = [
            tx.tx_id for spec in plan.to_specs() for tx in spec.transactions
        ]
        assert len(ids) == len(set(ids))

    @given(epoch_workloads(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_every_miner_verifies_in_her_effective_shard(self, txs, epoch_index):
        plan = EpochManager(MINERS).run_epoch(epoch_index, txs)
        for public in plan.assignment.shard_of:
            assert plan.verify_miner(public, plan.shard_of_miner(public))

    @given(epoch_workloads(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_merged_shards_have_pooled_miners(self, txs, epoch_index):
        plan = EpochManager(MINERS).run_epoch(epoch_index, txs)
        merged_map = plan.replay.merged_shard_map
        for old, new in merged_map.items():
            if old == new:
                continue
            old_members = set(plan.assignment.members_of(old))
            new_shard_members = set(plan.miners_of_shard(new))
            assert old_members <= new_shard_members
