"""Tests for repro.net.network and repro.net.messages."""

import pytest

from repro.errors import NetworkError
from repro.net.events import Scheduler
from repro.net.messages import Message, MessageKind
from repro.net.network import LatencyModel, Network
from repro.net.node import Node


class Recorder(Node):
    def __init__(self, node_id):
        self._id = node_id
        self.received = []

    @property
    def node_id(self):
        return self._id

    def receive(self, message):
        self.received.append(message)


def make_net(n=3, latency=None, seed=0):
    scheduler = Scheduler()
    network = Network(scheduler, latency=latency or LatencyModel(), seed=seed)
    nodes = [Recorder(f"n{i}") for i in range(n)]
    for node in nodes:
        network.register(node)
    return scheduler, network, nodes


class TestMessageKinds:
    def test_gossip_is_not_cross_shard(self):
        assert not MessageKind.TX.is_cross_shard
        assert not MessageKind.BLOCK.is_cross_shard

    def test_consensus_kinds_are_cross_shard(self):
        assert MessageKind.CROSS_SHARD_PREPARE.is_cross_shard
        assert MessageKind.STAT_REPORT.is_cross_shard
        assert MessageKind.LEADER_BROADCAST.is_cross_shard

    def test_message_ids_unique(self):
        a = Message(MessageKind.TX, "a", "b")
        b = Message(MessageKind.TX, "a", "b")
        assert a.msg_id != b.msg_id


class TestDelivery:
    def test_send_delivers_after_latency(self):
        scheduler, network, nodes = make_net()
        network.send(Message(MessageKind.TX, "n0", "n1", payload="hi"))
        assert nodes[1].received == []  # not yet delivered
        scheduler.run()
        assert len(nodes[1].received) == 1
        assert scheduler.now > 0

    def test_zero_latency_model(self):
        scheduler, network, nodes = make_net(
            latency=LatencyModel(base_seconds=0.0, jitter_seconds=0.0)
        )
        network.send(Message(MessageKind.TX, "n0", "n1"))
        scheduler.run()
        assert scheduler.now == 0.0
        assert len(nodes[1].received) == 1

    def test_broadcast_excludes_sender(self):
        scheduler, network, nodes = make_net(4)
        fanout = network.broadcast(MessageKind.BLOCK, "n0", payload="b")
        scheduler.run()
        assert fanout == 3
        assert nodes[0].received == []
        assert all(len(node.received) == 1 for node in nodes[1:])

    def test_multicast(self):
        scheduler, network, nodes = make_net(4)
        network.multicast(MessageKind.TX, "n0", "p", recipients=["n1", "n3"])
        scheduler.run()
        assert len(nodes[1].received) == 1
        assert nodes[2].received == []
        assert len(nodes[3].received) == 1

    def test_multicast_fanout_excludes_skipped_sender(self):
        __, network, __nodes = make_net(4)
        # The sender appears in the recipient list but is skipped, so the
        # reported fan-out must count only the messages actually sent.
        sent = network.multicast(
            MessageKind.TX, "n0", "p", recipients=["n0", "n1", "n3"]
        )
        assert sent == 2

    def test_multicast_fanout_counts_all_when_sender_absent(self):
        __, network, __nodes = make_net(4)
        sent = network.multicast(MessageKind.TX, "n0", "p", recipients=["n1", "n2"])
        assert sent == 2

    def test_unknown_recipient(self):
        __, network, __nodes = make_net()
        with pytest.raises(NetworkError):
            network.send(Message(MessageKind.TX, "n0", "ghost"))

    def test_multicast_unknown_recipient(self):
        # The fan-out fast path must preserve the per-recipient lookup
        # error of the original per-send loop.
        __, network, __nodes = make_net()
        with pytest.raises(NetworkError):
            network.multicast(MessageKind.TX, "n0", "p", recipients=["ghost"])

    def test_multicast_unknown_recipient_names_sender_and_kind(self):
        __, network, __nodes = make_net()
        with pytest.raises(NetworkError, match=r"ghost.*BLOCK.*n0"):
            network.multicast(
                MessageKind.BLOCK, "n0", "p", recipients=["n1", "ghost"]
            )

    def test_faulty_multicast_unknown_recipient_names_sender_and_kind(self):
        # The faulty (per-event) path must report the same diagnostic as
        # the wave fast path.
        from repro.faults.model import FaultModel
        from repro.faults.plan import FaultPlan

        scheduler = Scheduler()
        network = Network(
            scheduler,
            latency=LatencyModel(),
            seed=0,
            faults=FaultModel(FaultPlan.lossy(0.5), seed=1),
        )
        for node in [Recorder("n0"), Recorder("n1")]:
            network.register(node)
        with pytest.raises(NetworkError, match=r"ghost.*TX.*n0"):
            network.multicast(MessageKind.TX, "n0", "p", recipients=["n1", "ghost"])

    def test_duplicate_registration(self):
        __, network, nodes = make_net()
        with pytest.raises(NetworkError):
            network.register(nodes[0])


class TestDeliveryWaves:
    """The wave fast path must be observationally identical to the
    per-event oracle (``waves=False``): same recipients, same delivery
    times, same arrival order, same accounting."""

    def _run(self, waves, n=6, seed=3):
        scheduler = Scheduler()
        network = Network(
            scheduler,
            latency=LatencyModel(base_seconds=0.05, jitter_seconds=0.1),
            seed=seed,
            waves=waves,
        )
        nodes = [Recorder(f"n{i}") for i in range(n)]
        for node in nodes:
            network.register(node)
        arrivals = []
        for node in nodes:
            node.receive = (
                lambda message, node=node: arrivals.append(
                    (scheduler.now, node.node_id, message.kind, message.payload)
                )
            )
        network.broadcast(MessageKind.BLOCK, "n0", payload="b1")
        network.multicast(
            MessageKind.TX, "n1", "t1", recipients=["n0", "n2", "n4"]
        )
        network.broadcast(MessageKind.BLOCK, "n2", payload="b2")
        scheduler.run()
        return arrivals, network.messages_delivered, scheduler.events_fired

    def test_wave_matches_per_event_oracle(self):
        wave_arrivals, wave_count, wave_fired = self._run(waves=True)
        oracle_arrivals, oracle_count, oracle_fired = self._run(waves=False)
        assert wave_arrivals == oracle_arrivals
        assert wave_count == oracle_count
        assert wave_fired == oracle_fired

    def test_wave_message_fields(self):
        scheduler, network, nodes = make_net(4)
        network.broadcast(MessageKind.BLOCK, "n0", payload="b", shard_id=2)
        scheduler.run()
        for node in nodes[1:]:
            (message,) = node.received
            assert message.kind is MessageKind.BLOCK
            assert message.sender == "n0"
            assert message.recipient == node.node_id
            assert message.payload == "b"
            assert message.shard_id == 2

    def test_broadcast_uses_single_heap_entry(self):
        scheduler, network, __nodes = make_net(8)
        network.broadcast(MessageKind.BLOCK, "n0", payload="b")
        assert scheduler.pending == 7
        assert scheduler.peak_pending == 1


class TestAccounting:
    def test_gossip_not_counted_cross_shard(self):
        scheduler, network, __ = make_net()
        network.send(Message(MessageKind.TX, "n0", "n1", shard_id=1))
        scheduler.run()
        assert network.messages_delivered == 1
        assert network.cross_shard_messages == 0

    def test_cross_shard_counted_per_shard(self):
        scheduler, network, __ = make_net()
        network.send(
            Message(MessageKind.CROSS_SHARD_PREPARE, "n0", "n1", shard_id=2)
        )
        network.send(
            Message(MessageKind.CROSS_SHARD_VOTE, "n1", "n0", shard_id=2)
        )
        scheduler.run()
        assert network.cross_shard_messages == 2
        assert network.per_shard_messages[2] == 2

    def test_mean_per_shard(self):
        scheduler, network, __ = make_net()
        network.send(Message(MessageKind.STAT_REPORT, "n0", "n1", shard_id=1))
        scheduler.run()
        assert network.mean_per_shard_messages(2) == 0.5

    def test_mean_per_shard_rejects_zero(self):
        __, network, __nodes = make_net()
        with pytest.raises(NetworkError):
            network.mean_per_shard_messages(0)

    def test_reset_accounting(self):
        scheduler, network, __ = make_net()
        network.send(Message(MessageKind.STAT_REPORT, "n0", "n1", shard_id=1))
        scheduler.run()
        network.reset_accounting()
        assert network.messages_delivered == 0
        assert network.per_shard_messages == {}

    def test_per_kind_accounting(self):
        scheduler, network, __ = make_net()
        network.send(Message(MessageKind.BLOCK, "n0", "n1"))
        network.send(Message(MessageKind.BLOCK, "n0", "n2"))
        scheduler.run()
        assert network.per_kind_messages[MessageKind.BLOCK] == 2


class TestLatencyModel:
    def test_sample_within_bounds(self):
        import random

        model = LatencyModel(base_seconds=0.05, jitter_seconds=0.05)
        rng = random.Random(1)
        for __ in range(100):
            delay = model.sample(rng)
            assert 0.05 <= delay <= 0.10

    def test_negative_base_rejected_at_construction(self):
        # Used to surface much later as a "cannot schedule in the past"
        # SimulationError deep inside the event loop.
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            LatencyModel(base_seconds=-0.01)

    def test_negative_jitter_rejected_at_construction(self):
        # Used to be silently ignored by sample().
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            LatencyModel(jitter_seconds=-0.5)

    def test_sample_many_count_and_bounds(self):
        import random

        model = LatencyModel(base_seconds=0.05, jitter_seconds=0.05)
        delays = model.sample_many(random.Random(1), 50)
        assert len(delays) == 50
        assert all(0.05 <= d <= 0.10 for d in delays)
