"""Tests for repro.net.events — the discrete-event engine."""

import random

import pytest

from repro.errors import SimulationError
from repro.net.events import EventQueue, Scheduler


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("first"))
        queue.push(1.0, lambda: fired.append("second"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["first", "second"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None
        assert len(queue) == 0

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        assert queue.peek_time() == 5.0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        early = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        early.cancel()
        assert queue.peek_time() == 2.0

    def test_empty_peek(self):
        assert EventQueue().peek_time() is None


class TestScheduler:
    def test_clock_advances(self):
        scheduler = Scheduler()
        times = []
        scheduler.schedule_in(3.0, lambda: times.append(scheduler.now))
        scheduler.schedule_in(1.0, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [1.0, 3.0]

    def test_events_schedule_events(self):
        scheduler = Scheduler()
        fired = []

        def chain(n):
            fired.append(scheduler.now)
            if n > 0:
                scheduler.schedule_in(1.0, lambda: chain(n - 1))

        scheduler.schedule_in(1.0, lambda: chain(2))
        scheduler.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_until_caps_time(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule_in(10.0, lambda: fired.append(True))
        final = scheduler.run(until=5.0)
        assert final == 5.0
        assert fired == []
        # The late event survives and can still run later.
        scheduler.run()
        assert fired == [True]

    def test_until_advances_idle_clock(self):
        scheduler = Scheduler()
        assert scheduler.run(until=42.0) == 42.0
        assert scheduler.now == 42.0

    def test_stop_condition(self):
        scheduler = Scheduler()
        count = []
        for i in range(10):
            scheduler.schedule_in(float(i + 1), lambda: count.append(1))
        scheduler.run(stop_condition=lambda: len(count) >= 3)
        assert len(count) == 3

    def test_past_scheduling_rejected(self):
        scheduler = Scheduler()
        scheduler.schedule_in(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule_in(-1.0, lambda: None)

    def test_event_budget_guard(self):
        scheduler = Scheduler()

        def forever():
            scheduler.schedule_in(1.0, forever)

        scheduler.schedule_in(1.0, forever)
        with pytest.raises(SimulationError, match="budget"):
            scheduler.run(max_events=100)

    def test_events_fired_counter(self):
        scheduler = Scheduler()
        scheduler.schedule_in(1.0, lambda: None)
        scheduler.schedule_in(2.0, lambda: None)
        scheduler.run()
        assert scheduler.events_fired == 2

    def test_args_dispatch(self):
        # Bound-method dispatch: extra positional args reach the callback
        # without a closure per event.
        scheduler = Scheduler()
        seen = []
        scheduler.schedule_in(1.0, seen.append, "a")
        scheduler.schedule_at(2.0, seen.append, "b")
        scheduler.run()
        assert seen == ["a", "b"]

    def test_pending_is_live_count(self):
        scheduler = Scheduler()
        events = [scheduler.schedule_in(float(i + 1), lambda: None) for i in range(5)]
        assert scheduler.pending == 5
        events[0].cancel()
        events[0].cancel()  # idempotent: counted once
        assert scheduler.pending == 4

    def test_cancel_after_pop_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is event
        event.cancel()  # already popped; the live count must not go stale
        assert len(queue) == 1
        assert queue.pop() is not None
        assert queue.pop() is None

    def test_wave_interleaves_exactly_like_individual_events(self):
        """Differential oracle: a wave-scheduled fan-out fires in the
        same order, at the same times, with the same tie-breaking as the
        equivalent individual schedule_at calls — interleaved with
        ordinary events and other waves."""
        rng = random.Random(42)
        plan = []  # ("event", time) | ("wave", [times])
        for __ in range(40):
            if rng.random() < 0.5:
                plan.append(("event", round(rng.uniform(0.0, 10.0), 2)))
            else:
                n = rng.randint(2, 8)
                plan.append(
                    ("wave", [round(rng.uniform(0.0, 10.0), 2) for _ in range(n)])
                )

        def run_oracle():
            scheduler = Scheduler()
            fired = []
            for idx, (kind, spec) in enumerate(plan):
                times = [spec] if kind == "event" else spec
                for j, time in enumerate(times):
                    scheduler.schedule_at(
                        time, lambda i=idx, k=j: fired.append((scheduler.now, i, k))
                    )
            scheduler.run()
            return fired, scheduler.events_fired

        def run_waved():
            scheduler = Scheduler()
            fired = []

            def emit(item):
                # Read the clock inside the callback (emit runs at pop
                # time, before the scheduler advances ``now``).
                idx, j = item
                return (lambda i=idx, k=j: fired.append((scheduler.now, i, k))), ()

            for idx, (kind, spec) in enumerate(plan):
                if kind == "event":
                    scheduler.schedule_at(
                        spec, lambda i=idx: fired.append((scheduler.now, i, 0))
                    )
                else:
                    scheduler.schedule_wave(
                        list(spec), [(idx, j) for j in range(len(spec))], emit
                    )
            scheduler.run()
            return fired, scheduler.events_fired

        oracle_fired, oracle_count = run_oracle()
        wave_fired, wave_count = run_waved()
        assert wave_fired == oracle_fired
        assert wave_count == oracle_count

    def test_wave_equal_times_fire_in_item_order(self):
        """Zero-jitter broadcasts: every delivery lands at the same
        instant, and the stable sort must preserve item order — plus a
        later wave at the same time fully drains after an earlier one."""
        scheduler = Scheduler()
        fired = []

        def emit(tag):
            return fired.append, (tag,)

        scheduler.schedule_wave([1.0, 1.0, 1.0], ["a0", "a1", "a2"], emit)
        scheduler.schedule_wave([1.0, 1.0], ["b0", "b1"], emit)
        scheduler.run()
        assert fired == ["a0", "a1", "a2", "b0", "b1"]

    def test_wave_counts_toward_pending_and_events_fired(self):
        scheduler = Scheduler()
        scheduler.schedule_wave(
            [1.0, 2.0, 3.0], [0, 1, 2], lambda item: (lambda: None, ())
        )
        assert scheduler.pending == 3
        scheduler.run()
        assert scheduler.pending == 0
        assert scheduler.events_fired == 3

    def test_wave_emit_is_lazy(self):
        """Messages materialize at delivery, not at scheduling."""
        scheduler = Scheduler()
        emitted = []

        def emit(item):
            emitted.append(item)
            return (lambda: None), ()

        scheduler.schedule_wave([5.0, 1.0, 3.0], ["a", "b", "c"], emit)
        assert emitted == []
        scheduler.run(until=2.0)
        assert emitted == ["b"]  # only the due delivery was materialized
        scheduler.run()
        assert emitted == ["b", "c", "a"]

    def test_wave_is_one_heap_entry(self):
        """The wave's reason to exist: fan-out at O(1) heap footprint."""
        wave_scheduler = Scheduler()
        wave_scheduler.schedule_wave(
            [float(i + 1) for i in range(100)],
            list(range(100)),
            lambda item: (lambda: None, ()),
        )
        assert wave_scheduler.peak_pending == 1

        event_scheduler = Scheduler()
        for i in range(100):
            event_scheduler.schedule_at(float(i + 1), lambda: None)
        assert event_scheduler.peak_pending == 100

    def test_drain_pending_expands_waves(self):
        scheduler = Scheduler()
        sink = []

        def emit(tag):
            return sink.append, (tag,)

        scheduler.schedule_wave([3.0, 1.0], ["late", "early"], emit)
        scheduler.schedule_at(2.0, sink.append, "mid")
        drained = scheduler.drain_pending()
        times = [time for time, __, ___ in drained]
        assert times == [1.0, 2.0, 3.0]
        for __, callback, args in drained:
            callback(*args)
        assert sink == ["early", "mid", "late"]
        assert scheduler.pending == 0

    def test_wave_in_past_rejected(self):
        scheduler = Scheduler()
        scheduler.schedule_in(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_wave(
                [2.0, 0.5], [0, 1], lambda item: (lambda: None, ())
            )

    def test_empty_wave_is_noop(self):
        scheduler = Scheduler()
        assert scheduler.schedule_wave([], [], lambda item: (lambda: None, ())) is None
        assert scheduler.pending == 0

    def test_compaction_preserves_order(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(100)]
        for event in events[:80]:
            if event.time % 2 == 0:
                event.cancel()
        for event in events[:80]:
            event.cancel()
        assert queue.compactions >= 1
        times = []
        while (event := queue.pop()) is not None:
            times.append(event.time)
        assert times == sorted(times)
        assert times == [float(i) for i in range(80, 100)]
