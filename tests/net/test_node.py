"""Tests for repro.net.node — the Sec. III-C full-node workflow."""

import pytest

from repro.chain.state import WorldState
from repro.consensus.miner import MinerIdentity, ShardLiarBehavior
from repro.core.shard_formation import MAXSHARD_ID
from repro.net.messages import Message, MessageKind
from repro.net.node import FullNode
from tests.conftest import CONTRACT_A, CONTRACT_B, make_call, make_transfer


def classifier(tx):
    """Route CONTRACT_A calls to shard 1, everything else to MaxShard."""
    if tx.is_contract_call and tx.contract == CONTRACT_A:
        return 1
    return MAXSHARD_ID


def make_node(shard=1, membership=None, behavior=None, balance=1_000,
              packet_commitment=None, name=None):
    identity = MinerIdentity.create(name or f"node-shard{shard}")
    state = WorldState()
    state.create_account("0xualice", balance=balance)
    from repro.chain.contract import SmartContract

    state.deploy_contract(SmartContract.unconditional(CONTRACT_A, "0xudest"))
    return FullNode(
        identity=identity,
        shard_id=shard,
        membership_verifier=membership or (lambda public, shard_id: True),
        tx_classifier=classifier,
        behavior=behavior,
        state=state,
        packet_commitment=packet_commitment,
    )


class TestTransactionPath:
    def test_own_shard_tx_pooled(self):
        node = make_node(shard=1)
        assert node.on_transaction(make_call("0xualice", CONTRACT_A))
        assert len(node.mempool) == 1
        assert node.stats.txs_pooled == 1

    def test_foreign_shard_tx_ignored(self):
        node = make_node(shard=1)
        assert not node.on_transaction(make_transfer("0xualice", "0xubob"))
        assert len(node.mempool) == 0
        assert node.stats.txs_ignored == 1

    def test_maxshard_node_accepts_direct_transfers(self):
        node = make_node(shard=MAXSHARD_ID)
        assert node.on_transaction(make_transfer("0xualice", "0xubob"))

    def test_callgraph_tracks_all_traffic(self):
        node = make_node(shard=1)
        node.on_transaction(make_call("0xualice", CONTRACT_A))
        node.on_transaction(make_transfer("0xubob", "0xucarol"))
        assert node.callgraph.user_count() >= 2

    def test_duplicate_tx_not_pooled_twice(self):
        node = make_node(shard=1)
        tx = make_call("0xualice", CONTRACT_A)
        node.on_transaction(tx)
        assert not node.on_transaction(tx)
        assert len(node.mempool) == 1

    def test_receive_routes_tx_messages(self):
        node = make_node(shard=1)
        tx = make_call("0xualice", CONTRACT_A)
        node.receive(Message(MessageKind.TX, "peer", node.node_id, payload=tx))
        assert len(node.mempool) == 1


class TestMiningPath:
    def test_forge_packs_pending(self):
        node = make_node(shard=1)
        node.on_transaction(make_call("0xualice", CONTRACT_A, fee=5))
        block = node.forge_block(timestamp=1.0, capacity=10)
        assert len(block.transactions) == 1
        assert block.header.shard_id == 1
        assert block.header.miner == node.node_id

    def test_forge_respects_capacity(self):
        node = make_node(shard=1)
        for nonce in range(5):
            node.on_transaction(
                make_call("0xualice", CONTRACT_A, fee=nonce, nonce=nonce)
            )
        block = node.forge_block(timestamp=1.0, capacity=3)
        assert len(block.transactions) == 3

    def test_forge_skips_invalid_txs(self):
        node = make_node(shard=1, balance=3)
        node.on_transaction(make_call("0xualice", CONTRACT_A, amount=100, fee=5))
        block = node.forge_block(timestamp=1.0, capacity=10)
        assert block.is_empty

    def test_forge_orders_nonces_correctly(self):
        node = make_node(shard=1)
        # Insert out of nonce order; greedy-by-fee would pick nonce 1 first
        # and fail; the speculative filter keeps only the valid prefix.
        node.on_transaction(make_call("0xualice", CONTRACT_A, fee=9, nonce=1))
        node.on_transaction(make_call("0xualice", CONTRACT_A, fee=1, nonce=0))
        block = node.forge_block(timestamp=1.0, capacity=10)
        assert [tx.nonce for tx in block.transactions] == [0, 1]

    def test_adopt_block_updates_ledger_and_pool(self):
        node = make_node(shard=1)
        node.on_transaction(make_call("0xualice", CONTRACT_A))
        block = node.forge_block(timestamp=1.0, capacity=10)
        node.adopt_block(block)
        assert node.ledger.height == 1
        assert len(node.mempool) == 0
        assert node.confirmed_tx_count() == 1

    def test_liar_behavior_changes_header_claim(self):
        node = make_node(shard=1, behavior=ShardLiarBehavior(fake_shard=9))
        block = node.forge_block(timestamp=1.0, capacity=10)
        assert block.header.shard_id == 9


class TestBlockPath:
    def test_same_shard_block_recorded(self):
        packer = make_node(shard=1)
        receiver = make_node(shard=1)
        packer.on_transaction(make_call("0xualice", CONTRACT_A))
        block = packer.forge_block(timestamp=1.0, capacity=10)
        verdict = receiver.on_block(block)
        assert verdict.recorded
        assert receiver.ledger.height == 1
        assert receiver.stats.blocks_recorded == 1

    def test_foreign_block_not_recorded(self):
        packer = make_node(shard=1)
        receiver = make_node(shard=MAXSHARD_ID)
        block = packer.forge_block(timestamp=1.0, capacity=10)
        verdict = receiver.on_block(block)
        assert verdict.accepted and not verdict.recorded
        assert receiver.stats.blocks_foreign == 1
        assert receiver.ledger.height == 0

    def test_shard_liar_block_rejected(self):
        """A miner claiming a shard she fails verification for."""
        membership = lambda public, shard: False
        liar = make_node(shard=1)
        receiver = make_node(shard=1, membership=membership)
        block = liar.forge_block(timestamp=1.0, capacity=10)
        verdict = receiver.on_block(block)
        assert not verdict.accepted
        assert receiver.stats.blocks_rejected == 1

    def test_recording_dedupes_mempool(self):
        packer, receiver = make_node(shard=1), make_node(shard=1)
        tx = make_call("0xualice", CONTRACT_A)
        packer.on_transaction(tx)
        receiver.on_transaction(tx)
        block = packer.forge_block(timestamp=1.0, capacity=10)
        receiver.on_block(block)
        assert len(receiver.mempool) == 0

    def test_selection_deviation_rejected_with_replay(self):
        """Sec. IV-C at the node level: a block packing non-assigned
        transactions is rejected once a UnifiedReplay is installed."""
        from repro.core.selection.congestion_game import SelectionGameConfig
        from repro.core.unification import (
            ShardSelectionInput,
            UnificationPacket,
            UnifiedReplay,
        )

        packer = make_node(shard=1)
        txs = [
            make_call(f"0xusel{i}", CONTRACT_A, fee=i + 1, nonce=0)
            for i in range(4)
        ]
        packet = UnificationPacket(
            epoch_seed="node-epoch",
            leader_public="pk-leader",
            randomness="r" * 64,
            selection_inputs=(
                ShardSelectionInput(
                    shard_id=1,
                    tx_ids=tuple(t.tx_id for t in txs),
                    fees=tuple(float(t.fee) for t in txs),
                    miners=("pk-other", "pk-other2"),  # packer not assigned
                ),
            ),
            selection_config=SelectionGameConfig(capacity=2),
        )
        receiver = make_node(shard=1)
        receiver._selection_replay = UnifiedReplay(packet)
        packer.state.create_account("0xusel0", balance=100)
        packer.on_transaction(txs[0])
        block = packer.forge_block(timestamp=1.0, capacity=10)
        assert not block.is_empty
        verdict = receiver.on_block(block)
        assert not verdict.accepted
        assert "unified" in verdict.reason

    def test_empty_block_passes_selection_check(self):
        from repro.core.unification import UnificationPacket, UnifiedReplay

        packet = UnificationPacket(
            epoch_seed="e", leader_public="pk", randomness="r" * 64
        )
        packer = make_node(shard=1)
        receiver = make_node(shard=1)
        receiver._selection_replay = UnifiedReplay(packet)
        block = packer.forge_block(timestamp=1.0, capacity=10)
        assert receiver.on_block(block).recorded

    def test_duplicate_block_ignored_silently(self):
        packer, receiver = make_node(shard=1), make_node(shard=1)
        block = packer.forge_block(timestamp=1.0, capacity=10)
        receiver.on_block(block)
        receiver.on_block(block)  # no raise; gossip duplicates are normal
        assert receiver.stats.blocks_recorded >= 1


class TestOrphanBuffering:
    """Out-of-order block arrivals heal instead of being dropped."""

    def _chain_of(self, packer, length):
        blocks = []
        for i in range(length):
            block = packer.forge_block(timestamp=float(i + 1), capacity=10)
            packer.adopt_block(block)
            blocks.append(block)
        return blocks

    def test_reordered_blocks_reconnect(self):
        packer, receiver = make_node(shard=1), make_node(shard=1)
        first, second = self._chain_of(packer, 2)
        receiver.on_block(second)  # child before parent
        assert receiver.ledger.height == 0
        assert receiver.stats.orphans_buffered == 1
        receiver.on_block(first)
        assert receiver.ledger.height == 2
        assert receiver.stats.orphans_connected == 1
        assert receiver.stats.blocks_recorded == 2

    def test_deep_reorder_recovers_whole_chain(self):
        packer, receiver = make_node(shard=1), make_node(shard=1)
        blocks = self._chain_of(packer, 4)
        for block in reversed(blocks):
            receiver.on_block(block)
        assert receiver.ledger.height == 4
        assert receiver.stats.orphans_buffered == 3
        assert receiver.stats.orphans_connected == 3

    def test_duplicate_orphan_buffered_once(self):
        packer, receiver = make_node(shard=1), make_node(shard=1)
        first, second = self._chain_of(packer, 2)
        receiver.on_block(second)
        receiver.on_block(second)
        assert receiver.stats.orphans_buffered == 1
        receiver.on_block(first)
        assert receiver.ledger.height == 2

    def test_orphan_buffer_bounded(self):
        packer, receiver = make_node(shard=1), make_node(shard=1)
        blocks = self._chain_of(packer, FullNode.MAX_ORPHANS + 5)
        for block in blocks[1:]:
            receiver.on_block(block)
        assert receiver._orphan_count <= FullNode.MAX_ORPHANS


class TestUnificationPacketPath:
    """Leader-broadcast verification, installation and fallback."""

    def _packet_for(self, node, extra_miner="pk-mate"):
        from repro.core.selection.congestion_game import SelectionGameConfig
        from repro.core.unification import ShardSelectionInput, UnificationPacket

        txs = [
            make_call(f"0xupkt{i}", CONTRACT_A, fee=i + 1, nonce=0)
            for i in range(4)
        ]
        return UnificationPacket(
            epoch_seed="pkt-epoch",
            leader_public="pk-leader",
            randomness="r" * 64,
            selection_inputs=(
                ShardSelectionInput(
                    shard_id=node.shard_id,
                    tx_ids=tuple(t.tx_id for t in txs),
                    fees=tuple(float(t.fee) for t in txs),
                    miners=tuple(sorted((node.node_id, extra_miner))),
                ),
            ),
            selection_config=SelectionGameConfig(capacity=2),
        )

    def test_valid_packet_installs_replay_and_behavior(self):
        from repro.consensus.miner import AssignedSelectionBehavior

        node = make_node(shard=1, name="pkt-valid")
        packet = self._packet_for(node)
        node._packet_commitment = packet.digest()
        assert node.on_unification_packet(packet)
        assert node.has_unified_replay
        assert node.stats.packets_accepted == 1
        assert isinstance(node.behavior, AssignedSelectionBehavior)

    def test_tampered_packet_rejected(self):
        import dataclasses

        node = make_node(shard=1, name="pkt-tamper")
        packet = self._packet_for(node)
        node._packet_commitment = packet.digest()
        tampered = dataclasses.replace(packet, randomness="s" * 64)
        assert not node.on_unification_packet(tampered)
        assert not node.has_unified_replay
        assert node.stats.packets_rejected == 1
        assert node.stats.packets_accepted == 0

    def test_packet_delivered_via_message(self):
        node = make_node(shard=1, name="pkt-msg")
        packet = self._packet_for(node)
        node._packet_commitment = packet.digest()
        node.receive(
            Message(MessageKind.LEADER_BROADCAST, "pk-leader", node.node_id,
                    payload=packet)
        )
        assert node.has_unified_replay

    def test_fallback_then_late_packet_recovers(self):
        from repro.consensus.miner import (
            AssignedSelectionBehavior,
            SoloFallbackBehavior,
        )

        node = make_node(shard=1, name="pkt-late")
        packet = self._packet_for(node)
        node._packet_commitment = packet.digest()
        assert node.fallback_to_solo()
        assert isinstance(node.behavior, SoloFallbackBehavior)
        assert node.stats.leader_fallbacks == 1
        # The retransmitted packet still installs and upgrades the node.
        assert node.on_unification_packet(packet)
        assert isinstance(node.behavior, AssignedSelectionBehavior)

    def test_no_fallback_once_replay_installed(self):
        node = make_node(shard=1, name="pkt-nofall")
        packet = self._packet_for(node)
        node._packet_commitment = packet.digest()
        node.on_unification_packet(packet)
        assert not node.fallback_to_solo()
        assert node.stats.leader_fallbacks == 0

    def test_overridden_behavior_kept_on_install(self):
        behavior = ShardLiarBehavior(fake_shard=9)
        node = make_node(shard=1, behavior=behavior, name="pkt-cheat")
        packet = self._packet_for(node)
        node._packet_commitment = packet.digest()
        node.on_unification_packet(packet)
        assert node.behavior is behavior  # cheater keeps cheating
        assert node.has_unified_replay  # but can still verify others


class TestTipDeltaReorg:
    """The journaled reorg path vs. the replay-from-genesis oracle."""

    def _forked_node(self, fast_paths=True):
        """A node driven through a multi-block reorg with value-moving
        bodies, so both branches actually mutate the world state."""
        from repro.chain.block import Block

        node = make_node(shard=1, name=f"reorg-{fast_paths}")
        # Fund bob in the live state AND the pre-genesis snapshot: the
        # replay oracle rebuilds from the pristine snapshot, so genesis
        # funding must exist in both views.
        node.state.create_account("0xubob", balance=1_000)
        node._pristine_state.create_account("0xubob", balance=1_000)
        if not fast_paths:
            node._fast_paths = False
        genesis = node.ledger.head_hash
        tx_a = make_call("0xualice", fee=4)
        tx_b = make_transfer("0xubob", "0xucarol", amount=10, fee=2)
        tx_c = make_call("0xualice", fee=3, nonce=0)
        # Branch A: two blocks.
        a1 = Block.build(genesis, "pkA", 1, 1, 1.0, [tx_a])
        a2 = Block.build(a1.block_hash, "pkA", 1, 2, 2.0, [tx_b])
        # Branch B: three blocks from genesis — forces a reorg to depth 0.
        b1 = Block.build(genesis, "pkB", 1, 1, 1.1, [tx_c])
        b2 = Block.build(b1.block_hash, "pkB", 1, 2, 2.1, [tx_b])
        b3 = Block.build(b2.block_hash, "pkB", 1, 3, 3.1, [])
        for block in (a1, a2, b1, b2, b3):
            node._record_block(block)
        assert node.ledger.head_hash == b3.block_hash
        return node

    def test_reorg_state_matches_oracle(self):
        node = self._forked_node(fast_paths=True)
        assert node.state.fingerprint() == node.state_oracle_fingerprint()

    def test_fast_and_slow_paths_agree(self):
        fast = self._forked_node(fast_paths=True)
        slow = self._forked_node(fast_paths=False)
        assert fast.state.fingerprint() == slow.state.fingerprint()
        assert (
            fast.ledger.confirmed_tx_ids() == fast.ledger.confirmed_tx_ids_scan()
        )

    def test_partial_depth_reorg(self):
        # Fork above genesis: the shared prefix must not be reverted.
        from repro.chain.block import Block

        node = make_node(shard=1, name="partial-reorg")
        node.state.create_account("0xubob", balance=1_000)
        node._pristine_state.create_account("0xubob", balance=1_000)
        genesis = node.ledger.head_hash
        tx_base = make_call("0xualice", fee=1)
        base = Block.build(genesis, "pkA", 1, 1, 1.0, [tx_base])
        tx_a = make_transfer("0xubob", "0xucarol", amount=5, fee=1)
        a2 = Block.build(base.block_hash, "pkA", 1, 2, 2.0, [tx_a])
        b2 = Block.build(base.block_hash, "pkB", 1, 2, 2.1, [])
        b3 = Block.build(b2.block_hash, "pkB", 1, 3, 3.1, [tx_a])
        for block in (base, a2, b2, b3):
            node._record_block(block)
        assert node.ledger.head_hash == b3.block_hash
        assert node.state.fingerprint() == node.state_oracle_fingerprint()
        # The shared-prefix tx stayed confirmed throughout.
        assert tx_base.tx_id in node.ledger.confirmed_tx_ids()
