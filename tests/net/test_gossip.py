"""Tests for repro.net.gossip."""

import pytest

from repro.errors import NetworkError
from repro.net.events import Scheduler
from repro.net.gossip import GossipOverlay
from repro.net.messages import Message, MessageKind
from repro.net.network import LatencyModel, Network
from repro.net.node import Node


class GossipNode(Node):
    """A node that relays through an overlay and records fresh payloads."""

    def __init__(self, node_id, overlay_ref):
        self._id = node_id
        self._overlay_ref = overlay_ref
        self.fresh_payloads = []

    @property
    def node_id(self):
        return self._id

    def receive(self, message):
        overlay = self._overlay_ref[0]
        if overlay.on_receive(self._id, message):
            self.fresh_payloads.append(message.payload)


def build_overlay(n=12, fanout=3, seed=1):
    scheduler = Scheduler()
    network = Network(
        scheduler, latency=LatencyModel(base_seconds=0.01, jitter_seconds=0.01),
        seed=seed,
    )
    overlay_ref = [None]
    nodes = [GossipNode(f"g{i}", overlay_ref) for i in range(n)]
    for node in nodes:
        network.register(node)
    overlay = GossipOverlay(network, fanout=fanout, seed=seed)
    overlay_ref[0] = overlay
    return scheduler, network, overlay, nodes


class TestGossipOverlay:
    def test_push_phase_reaches_most_nodes(self):
        """Push gossip is probabilistic: expect wide but maybe partial
        coverage from the push phase alone."""
        scheduler, __, overlay, nodes = build_overlay()
        overlay.publish(MessageKind.TX, "g0", payload="payload-1")
        scheduler.run()
        assert overlay.coverage("payload-1") >= 0.5

    def test_push_plus_repair_reaches_everyone(self):
        scheduler, __, overlay, nodes = build_overlay()
        overlay.publish(MessageKind.TX, "g0", payload="payload-1")
        scheduler.run()
        overlay.repair(MessageKind.TX, "g0", "payload-1")
        scheduler.run()
        assert overlay.coverage("payload-1") == 1.0
        receivers = [n for n in nodes if "payload-1" in n.fresh_payloads]
        assert len(receivers) == len(nodes) - 1  # everyone but the origin

    def test_repair_is_noop_at_full_coverage(self):
        scheduler, __, overlay, __nodes = build_overlay(fanout=11)
        overlay.publish(MessageKind.TX, "g0", payload="payload-x")
        scheduler.run()
        if overlay.coverage("payload-x") == 1.0:
            assert overlay.repair(MessageKind.TX, "g0", "payload-x") == 0

    def test_each_node_delivers_payload_once(self):
        scheduler, __, overlay, nodes = build_overlay(fanout=5)
        overlay.publish(MessageKind.TX, "g0", payload="payload-2")
        scheduler.run()
        for node in nodes:
            assert node.fresh_payloads.count("payload-2") <= 1

    def test_duplicates_suppressed(self):
        scheduler, __, overlay, __nodes = build_overlay(fanout=6)
        overlay.publish(MessageKind.TX, "g0", payload="payload-3")
        scheduler.run()
        assert overlay.stats.duplicates_suppressed > 0

    def test_relay_traffic_bounded(self):
        """Fanout bounds relays to O(n * fanout) rather than O(n^2)."""
        scheduler, network, overlay, nodes = build_overlay(n=20, fanout=2)
        overlay.publish(MessageKind.TX, "g0", payload="payload-4")
        scheduler.run()
        assert overlay.stats.relays_sent <= 20 * 2

    def test_multiple_payloads_independent(self):
        scheduler, __, overlay, __nodes = build_overlay()
        overlay.publish(MessageKind.TX, "g0", payload="a")
        overlay.publish(MessageKind.TX, "g5", payload="b")
        scheduler.run()
        assert overlay.coverage("a") == 1.0
        assert overlay.coverage("b") == 1.0

    def test_block_payloads_keyed_by_hash(self):
        from repro.chain.block import Block

        scheduler, __, overlay, nodes = build_overlay(n=6, fanout=3)
        block = Block.genesis(1)
        overlay.publish(MessageKind.BLOCK, "g0", payload=block)
        scheduler.run()
        assert overlay.coverage(block) == 1.0

    def test_invalid_fanout(self):
        scheduler, network, __, __nodes = build_overlay()
        with pytest.raises(NetworkError):
            GossipOverlay(network, fanout=0)

    def test_coverage_of_unknown_payload(self):
        __, __, overlay, __nodes = build_overlay()
        assert overlay.coverage("never-published") == 0.0
