#!/usr/bin/env python3
"""Congestion-game lab: watching Algorithm 2 de-serialize a shard.

Starts every miner on the duplicated greedy selection (the Sec. II-B
pathology), runs best-reply dynamics, and shows how the Rosenthal
potential climbs while miners disperse over distinct transaction sets —
then measures the resulting throughput improvement in the simulator.

Run:  python examples/congestion_game_lab.py
"""

import numpy as np

from repro import (
    BestReplyDynamics,
    SelectionGameConfig,
    ShardGroupSpec,
    ShardedSimulation,
    SimulationConfig,
    TimingModel,
    run_ethereum,
    single_shard_workload,
)
from repro.core.selection.best_reply import greedy_profile
from repro.core.selection.congestion_game import (
    rosenthal_potential,
    selection_counts,
)
from repro.experiments.common import epoch_selection_assignments

MINERS = 6
TIMING = TimingModel.low_variance(interval=1.0, shape=48.0)


def show_game() -> None:
    transactions = single_shard_workload(24, seed=5)
    fees = [float(tx.fee) for tx in transactions]
    fees_arr = np.asarray(fees)

    initial = greedy_profile(fees, miners=MINERS, capacity=4)
    phi0 = rosenthal_potential(fees_arr, selection_counts(len(fees), initial))
    print(f"Greedy start: every miner on the same 4 transactions "
          f"(distinct sets = {len(set(initial))}, potential = {phi0:.1f})")

    dynamics = BestReplyDynamics(SelectionGameConfig(capacity=4), seed=6)
    outcome = dynamics.run(fees, miners=MINERS, initial_profile=initial)
    print(f"After {outcome.moves} best replies over {outcome.rounds} sweeps:")
    print(f"  distinct sets: {outcome.distinct_set_count()} / {MINERS}")
    print(f"  potential:     {outcome.potential():.1f} (monotone ascent)")
    print(f"  converged to a pure Nash equilibrium: {outcome.converged}")
    for index, chosen in enumerate(outcome.profile):
        shares = ", ".join(f"tx{j}:{fees[j]:.0f}" for j in chosen)
        print(f"  miner {index}: {{{shares}}}")


def show_throughput() -> None:
    print("\nThroughput effect (200 txs, one shard, 6 miners):")
    transactions = single_shard_workload(200, seed=8)
    miner_ids = [f"lab-m{i}" for i in range(MINERS)]
    assignments = epoch_selection_assignments(
        transactions, miner_ids, capacity=10, seed=9
    )
    assigned_spec = ShardGroupSpec(
        shard_id=1,
        miners=tuple(miner_ids),
        transactions=tuple(transactions),
        mode="assigned",
        assignments=assignments,
    )
    parallel = ShardedSimulation(
        [assigned_spec], SimulationConfig(timing=TIMING, seed=10)
    ).run()
    serial = run_ethereum(
        transactions, miner_count=MINERS, config=SimulationConfig(timing=TIMING, seed=11)
    )
    print(f"  fee-greedy (serialized): {serial.makespan:6.1f} s")
    print(f"  game-assigned lanes:     {parallel.makespan:6.1f} s")
    print(f"  improvement: {serial.makespan / parallel.makespan:.2f}x "
          f"(paper Fig. 3h: ~3x average, rising with miners)")


def main() -> None:
    show_game()
    show_throughput()


if __name__ == "__main__":
    main()
