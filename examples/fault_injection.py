#!/usr/bin/env python3
"""Fault injection: breaking the network on purpose, and watching it heal.

The simulator's default network is too polite — every message arrives,
every node stays up, the unification leader never lies. This walkthrough
wires a seeded :class:`FaultPlan` into a full protocol run and shows the
degradation machinery working:

1. a clean baseline run;
2. 20% message loss plus a mid-run crash — retransmission sweeps and
   orphan buffering still drain every shard;
3. a withholding leader — the silence timeout degrades every miner to
   solo mining instead of stalling;
4. an equivocating leader — the tampered packet's digest fails the
   public commitment and every honest node rejects it.

Run:  python examples/fault_injection.py
"""

from repro import ProtocolConfig, ProtocolSimulation, uniform_contract_workload
from repro.consensus.miner import MinerIdentity
from repro.consensus.pow import PoWParameters
from repro.faults import CrashEvent, FaultPlan, FaultyLeader, MessageFaults
from repro.net.network import LatencyModel

FAST_POW = PoWParameters(difficulty=0x40000 // 60)  # ~1 s solo blocks
LOW_LATENCY = LatencyModel(base_seconds=0.01, jitter_seconds=0.01)


def build(miners, txs, plan=None, unified=False, **overrides):
    config = ProtocolConfig(
        pow_params=FAST_POW,
        latency=LOW_LATENCY,
        max_duration=2_000.0,
        seed=7,
        fault_plan=plan,
        **overrides,
    )
    return ProtocolSimulation(miners, txs, config=config, unified=unified)


def banner(result, sim):
    drained = result.confirmed_tx_ids >= sim._relevant_tx_ids()
    print(f"   drained: {drained}  (confirmed {len(result.confirmed_tx_ids)} "
          f"txs in {result.duration:.1f} s)")
    print(f"   drops: {result.drops}  retransmissions: {result.retransmissions}"
          f"  fallbacks: {result.fallbacks}"
          f"  equivocations detected: {result.equivocations_detected}")


def clean_baseline() -> None:
    print("1. Clean baseline (no fault plan)")
    miners = [MinerIdentity.create(f"base-{i}") for i in range(6)]
    txs = uniform_contract_workload(total_txs=30, contract_shards=2, seed=7)
    sim = build(miners, txs)
    banner(sim.run(), sim)


def chaos() -> None:
    print("\n2. 20% message loss + one node crashing at t=3 s")
    miners = [MinerIdentity.create(f"chaos-{i}") for i in range(6)]
    txs = uniform_contract_workload(total_txs=30, contract_shards=2, seed=7)
    plan = FaultPlan(
        default_message_faults=MessageFaults(drop_probability=0.2),
        crashes=(CrashEvent(miners[2].public, at=3.0, recover_at=12.0),),
    )
    sim = build(miners, txs, plan=plan, retransmit_interval=2.0)
    banner(sim.run(), sim)


def withholding_leader() -> None:
    print("\n3. Unified epoch, but the leader withholds the packet")
    miners = [MinerIdentity.create(f"silent-{i}") for i in range(8)]
    txs = uniform_contract_workload(total_txs=30, contract_shards=1, seed=9)
    plan = FaultPlan(leader=FaultyLeader("withhold"))
    sim = build(miners, txs, plan=plan, unified=True, leader_timeout=5.0)
    result = sim.run()
    print(f"   every miner fell back to solo mining at the {5.0:.0f} s "
          f"timeout: fallbacks = {result.fallbacks}/{len(miners)}")
    banner(result, sim)


def equivocating_leader() -> None:
    print("\n4. Unified epoch, but the leader equivocates")
    miners = [MinerIdentity.create(f"equiv-{i}") for i in range(8)]
    txs = uniform_contract_workload(total_txs=30, contract_shards=1, seed=9)
    plan = FaultPlan(leader=FaultyLeader("equivocate"))
    sim = build(miners, txs, plan=plan, unified=True, leader_timeout=5.0)
    result = sim.run()
    honest = len(miners) - 1
    print(f"   the tampered packet's digest failed the public commitment "
          f"on {result.equivocations_detected}/{honest} honest nodes")
    banner(result, sim)


if __name__ == "__main__":
    clean_baseline()
    chaos()
    withholding_leader()
    equivocating_leader()
    print("\nDone: loss, crashes and leader misbehavior all degrade "
          "gracefully instead of stalling the protocol.")
