#!/usr/bin/env python3
"""A token marketplace: skewed contract popularity and shard merging.

The scenario the paper's introduction motivates: a few hot token
contracts dominate traffic while a long tail of niche contracts sees a
trickle. Naive contract-centric sharding gives the tail tiny shards that
burn hash power on empty blocks; the inter-shard merging game (Sec. IV-A)
consolidates them — here, end to end, with the reward accounting that
makes merging individually rational.

Run:  python examples/token_marketplace.py
"""

from repro import (
    IterativeMerging,
    MergingGameConfig,
    ShardGroupSpec,
    ShardedSimulation,
    ShardPlayer,
    SimulationConfig,
    TimingModel,
    partition_transactions,
)
from repro.chain.fees import FeePolicy
from repro.workloads.generators import WorkloadBuilder

TIMING = TimingModel.low_variance(interval=1.0, shape=12.0)

# Contract popularity: two hot tokens, six niche ones.
MARKET = {
    "megacoin": 80,
    "stableswap": 64,
    "nft-drop": 9,
    "dao-votes": 7,
    "bridge": 6,
    "lottery": 4,
    "faucet": 3,
    "archive": 2,
}


def build_market_workload():
    builder = WorkloadBuilder(seed=7)
    transactions = []
    for index, (name, volume) in enumerate(sorted(MARKET.items()), start=1):
        contract = f"0xc{index:039d}"
        for user in range(volume):
            transactions.append(
                builder.contract_call(
                    f"0xu-{name}-{user}", contract, fee=1 + (user * 13) % 20
                )
            )
    return transactions


def simulate(by_shard, merged_groups=(), label=""):
    merged_ids = {sid for group in merged_groups for sid in group}
    specs = []
    for group in merged_groups:
        txs, miners = [], []
        for sid in group:
            txs.extend(by_shard[sid])
            miners.append(f"m{sid}")
        specs.append(
            ShardGroupSpec(
                shard_id=min(group),
                miners=tuple(miners),
                transactions=tuple(txs),
                start_delay=3.0,
            )
        )
    for sid, txs in by_shard.items():
        if sid in merged_ids or not txs:
            continue
        specs.append(
            ShardGroupSpec(shard_id=sid, miners=(f"m{sid}",), transactions=tuple(txs))
        )
    result = ShardedSimulation(specs, SimulationConfig(timing=TIMING, seed=3)).run()
    print(
        f"  {label:<16} shards={len(specs):>2}  makespan={result.makespan:6.1f}s  "
        f"empty blocks={result.total_empty_blocks}"
    )
    return result


def main() -> None:
    transactions = build_market_workload()
    partition = partition_transactions(transactions)
    sizes = partition.shard_sizes

    print("Marketplace shard sizes:")
    for shard_id, size in sorted(sizes.items()):
        if size:
            print(f"  shard {shard_id}: {size} txs")

    config = MergingGameConfig(shard_reward=10.0, lower_bound=12, subslots=16)
    small_ids = partition.small_shards(lower_bound=config.lower_bound)
    print(f"\nSmall shards (below L={config.lower_bound}): {small_ids}")

    print("\nWithout merging:")
    before = simulate(partition.by_shard, label="unmerged")

    players = [ShardPlayer(sid, sizes[sid], cost=4.0) for sid in small_ids]
    merging = IterativeMerging(config, seed=11).run(players)
    groups = [o.merged_shards for o in merging.new_shards if o.satisfied]
    leftovers = [p.shard_id for p in merging.leftover_players]
    if groups and leftovers:
        groups[-1] = tuple(sorted(groups[-1] + tuple(leftovers)))
    print(
        f"\nMerging game outcome: {len(groups)} new shard(s): "
        + ", ".join(str(g) for g in groups)
    )

    print("\nWith merging:")
    after = simulate(partition.by_shard, merged_groups=groups, label="merged")

    reduction = 1.0 - after.total_empty_blocks / max(before.total_empty_blocks, 1)
    print(f"\nEmpty-block reduction: {reduction:.0%} (paper: ~90%)")

    # The incentive ledger: merging pays because of the shard reward.
    policy = FeePolicy(block_reward=10, shard_reward=50)
    lone_income = policy.block_reward  # an empty block per slot
    merged_shard = groups[0] if groups else ()
    merged_txs = sum(sizes[sid] for sid in merged_shard)
    merged_income = policy.shard_reward + policy.block_reward + merged_txs
    print(
        f"Per-miner economics: staying ~{lone_income} coins/slot (empty blocks) "
        f"vs merging ~{merged_income} coins (shard reward + fees)"
    )


if __name__ == "__main__":
    main()
