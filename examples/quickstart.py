#!/usr/bin/env python3
"""Quickstart: contract-centric sharding in ~60 lines.

Builds the paper's Sec. VI-B1 scenario — 200 transactions spread over
eight smart contracts plus the MaxShard — then compares confirmation time
against the non-sharded Ethereum baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    ShardGroupSpec,
    ShardedSimulation,
    SimulationConfig,
    TimingModel,
    partition_transactions,
    run_ethereum,
    throughput_improvement,
    uniform_contract_workload,
)


def main() -> None:
    # 1. A workload: 200 transactions, 8 contracts + the MaxShard.
    #    Senders feeding each contract only ever touch that contract, so
    #    their transactions are shardable (Sec. III-A).
    transactions = uniform_contract_workload(
        total_txs=200, contract_shards=8, seed=42
    )

    # 2. Shard formation is automatic: the call graph classifies senders
    #    and every single-contract sender's traffic lands in her
    #    contract's shard; everything else goes to the MaxShard (id 0).
    partition = partition_transactions(transactions)
    print("Shard sizes (shard id -> transactions):")
    for shard_id, size in sorted(partition.shard_sizes.items()):
        label = "MaxShard" if shard_id == 0 else f"shard {shard_id}"
        print(f"  {label:>9}: {size}")

    # 3. Simulate: one miner per shard, one block per minute, ten
    #    transactions per block — the paper's testbed configuration.
    timing = TimingModel.low_variance(interval=60.0, shape=48.0)
    specs = [
        ShardGroupSpec(
            shard_id=shard_id,
            miners=(f"miner-{shard_id}",),
            transactions=tuple(txs),
        )
        for shard_id, txs in partition.by_shard.items()
    ]
    sharded = ShardedSimulation(
        specs, SimulationConfig(timing=timing, seed=1)
    ).run()

    # 4. The baseline: the same workload on a non-sharded chain where all
    #    nine miners duplicate the same fee-greedy selection.
    ethereum = run_ethereum(
        transactions, miner_count=9, config=SimulationConfig(timing=timing, seed=2)
    )

    improvement = throughput_improvement(ethereum.makespan, sharded.makespan)
    print()
    print(f"Ethereum confirmed 200 txs in {ethereum.makespan:7.1f} s")
    print(f"Sharding confirmed 200 txs in {sharded.makespan:7.1f} s")
    print(f"Throughput improvement: {improvement:.2f}x (paper: ~7.2x at 9 shards)")


if __name__ == "__main__":
    main()
