#!/usr/bin/env python3
"""Tracing a run: deterministic spans, metrics, and the trace digest.

The observability layer (:mod:`repro.observe`) records what a simulation
*did* — which phases ran, which shards confirmed when, how many rounds
each game needed — without ever letting wall-clock time into a record's
identity. Two same-seed runs therefore produce byte-identical traces,
and the SHA-256 trace digest is a one-line reproducibility check.

This walkthrough:

1. runs a seeded protocol simulation with an explicit :class:`Tracer`
   (the ``trace=`` hook; ``REPRO_TRACE=1`` would enable the same thing
   environment-wide);
2. prints the human-readable summary — per-phase record counts, the
   per-shard confirmation timeline, and the metrics registry;
3. reruns with the same seed and verifies the digests match;
4. exports the trace as JSONL and recomputes the digest from the file
   alone, the way the CI trace-smoke step does.

Run:  python examples/tracing.py
Set ``REPRO_TRACE_OUT=/path/trace.jsonl`` to choose the export path
(defaults to a temporary directory).
"""

import os
import pathlib
import tempfile

from repro import ProtocolConfig, ProtocolSimulation, uniform_contract_workload
from repro.consensus.miner import MinerIdentity
from repro.consensus.pow import PoWParameters
from repro.net.network import LatencyModel
from repro.observe import Tracer, digest_of_jsonl

FAST_POW = PoWParameters(difficulty=0x40000 // 60)  # ~1 s solo blocks
LOW_LATENCY = LatencyModel(base_seconds=0.01, jitter_seconds=0.01)


def traced_run(seed: int = 7) -> "Tracer":
    miners = [MinerIdentity.create(f"trace-{i}") for i in range(6)]
    txs = uniform_contract_workload(total_txs=30, contract_shards=2, seed=3)
    config = ProtocolConfig(
        pow_params=FAST_POW,
        latency=LOW_LATENCY,
        max_duration=2_000.0,
        seed=seed,
        trace=Tracer(),
    )
    result = ProtocolSimulation(miners, txs, config=config).run()
    return result.trace


def main() -> None:
    print("=== traced protocol run ===")
    trace = traced_run()
    print(trace.summary(title="protocol seed=7"))

    print()
    print("=== determinism: same seed, same digest ===")
    again = traced_run()
    print(f"run 1 digest: {trace.digest()}")
    print(f"run 2 digest: {again.digest()}")
    print(f"identical:    {trace.digest() == again.digest()}")

    other = traced_run(seed=8)
    print(f"seed=8 digest differs: {other.digest() != trace.digest()}")

    print()
    print("=== JSONL export ===")
    out = os.environ.get("REPRO_TRACE_OUT")
    if out:
        path = trace.write_jsonl(out)
    else:
        path = trace.write_jsonl(
            pathlib.Path(tempfile.mkdtemp(prefix="repro-trace-")) / "trace.jsonl"
        )
    print(f"wrote {len(trace)} records to {path}")
    print(f"digest recomputed from file: {digest_of_jsonl(path)}")
    print(f"matches live digest:         {digest_of_jsonl(path) == trace.digest()}")


if __name__ == "__main__":
    main()
