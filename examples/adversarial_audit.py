#!/usr/bin/env python3
"""Adversarial audit: the security machinery, end to end.

Walks the paper's whole security story (Sec. III-B, IV-C, IV-D):

1. closed-form shard safety under 25% / 33% adversaries (Fig. 1d);
2. verifiable leader election + beacon randomness + publicly checkable
   miner-to-shard assignment;
3. a cheating miner claiming the wrong shard — her blocks rejected by
   every honest full node;
4. a selection cheater caught by parameter-unification replay;
5. the Eq. (3) / Eq. (6) failure probabilities.

Run:  python examples/adversarial_audit.py
"""

from repro import ProtocolConfig, ProtocolSimulation, uniform_contract_workload
from repro.consensus.miner import MinerIdentity, ShardLiarBehavior
from repro.consensus.pow import PoWParameters
from repro.core import security
from repro.core.merging.game import MergingGameConfig, ShardPlayer
from repro.core.selection.congestion_game import SelectionGameConfig
from repro.core.unification import (
    ShardSelectionInput,
    UnificationPacket,
    UnifiedReplay,
)
from repro.crypto.randhound import RandHoundBeacon
from repro.crypto.vrf import elect_leader, vrf_verify
from repro.net.network import LatencyModel
from repro.workloads.generators import single_shard_workload


def audit_shard_safety() -> None:
    print("1. Shard safety (Fig. 1d)")
    for adversary in (0.25, 0.33):
        for miners in (20, 30, 60, 100):
            safety = security.shard_safety(miners, adversary)
            print(f"   {adversary:.0%} adversary, {miners:>3} miners: "
                  f"safety = {safety:.6f}")
    size = security.minimum_safe_shard_size(0.33, target_safety=0.9999)
    print(f"   smallest shard with 99.99% safety vs 33%: {size} miners")


def audit_randomness() -> None:
    print("\n2. Verifiable leader election and beacon")
    miners = [MinerIdentity.create(f"audit-{i}") for i in range(7)]
    leader, proof = elect_leader([m.keypair for m in miners], "epoch-7")
    print(f"   leader: {leader.public[:16]}...  "
          f"proof verifies: {vrf_verify(proof, leader)}")
    beacon = RandHoundBeacon([m.keypair for m in miners])
    completed = beacon.run_round()
    print(f"   beacon randomness: {completed.randomness[:16]}...  "
          f"transcript verifies: {completed.verify()}")
    try:
        beacon.run_round(withholders={miners[0].public})
    except Exception as exc:  # BeaconError
        print(f"   withholding attack detected: {exc}")


def audit_shard_liar() -> None:
    print("\n3. Shard liar rejected by honest full nodes")
    miners = [MinerIdentity.create(f"liar-net-{i}") for i in range(6)]
    transactions = uniform_contract_workload(total_txs=24, contract_shards=2, seed=9)
    liar = miners[0]
    simulation = ProtocolSimulation(
        miners,
        transactions,
        config=ProtocolConfig(
            pow_params=PoWParameters(difficulty=0x40000 // 60),
            latency=LatencyModel(base_seconds=0.01, jitter_seconds=0.01),
            max_duration=600.0,
            seed=13,
        ),
        behaviors={liar.public: ShardLiarBehavior(fake_shard=77)},
    )
    result = simulation.run()
    print(f"   blocks rejected network-wide: {result.blocks_rejected}")
    sample = next(
        (r for r in result.rejection_reasons if "not a member" in r), "(none)"
    )
    print(f"   sample verdict: {sample}")


def audit_selection_cheater() -> None:
    print("\n4. Selection cheater caught by unification replay")
    miners = [MinerIdentity.create(f"uni-audit-{i}") for i in range(3)]
    txs = single_shard_workload(9, seed=17)
    packet = UnificationPacket(
        epoch_seed="audit-epoch",
        leader_public=miners[0].public,
        randomness="a" * 64,
        selection_inputs=(
            ShardSelectionInput(
                shard_id=1,
                tx_ids=tuple(t.tx_id for t in txs),
                fees=tuple(float(t.fee) for t in txs),
                miners=tuple(m.public for m in miners),
            ),
        ),
        selection_config=SelectionGameConfig(capacity=3),
    )
    replay = UnifiedReplay(packet)
    honest = replay.assigned_tx_ids(1, miners[1].public)
    stolen = [t for t in txs if t.tx_id not in set(honest)][:2]

    from repro.chain.block import Block

    honest_block = Block.build(
        Block.genesis(1).block_hash, miners[1].public, 1, 1, 1.0,
        [t for t in txs if t.tx_id in set(honest)],
    )
    cheat_block = Block.build(
        Block.genesis(1).block_hash, miners[1].public, 1, 1, 1.0, stolen
    )
    print(f"   honest block follows selection: "
          f"{replay.block_follows_selection(honest_block)}")
    print(f"   cheating block follows selection: "
          f"{replay.block_follows_selection(cheat_block)}")


def audit_failure_probabilities() -> None:
    print("\n5. Sec. IV-D failure probabilities")
    p_s = security.shard_safety(60, 0.25)
    eq3 = security.merging_failure_probability(0.25, p_s)
    eq6 = security.selection_corruption_probability(0.25, 200, 160)
    print(f"   Eq.(3) merging failure, 25% adversary:   {eq3:.2e}  (paper ~8e-6)")
    print(f"   Eq.(6) selection corruption, 25%, N=200: {eq6:.2e}  (paper ~7e-7)")


def main() -> None:
    audit_shard_safety()
    audit_randomness()
    audit_shard_liar()
    audit_selection_cheater()
    audit_failure_probabilities()


if __name__ == "__main__":
    main()
