#!/usr/bin/env python3
"""Watching a run: heartbeats, shard-load telemetry, hotspot indices.

Telemetry (:mod:`repro.observe.telemetry`) answers the question tracing
doesn't: *what is the run doing right now, and which shards are doing
it?* A heartbeat samples throughput, per-shard mempool depth and peak
RSS at a fixed simulated-time interval — printing an optional live
progress line — and the final shard-load report breaks the run down
per shard: blocks forged, empty-block rate, mempool high-water marks,
the cross-shard traffic matrix, and the imbalance indices (max/mean,
Gini) a dynamic re-sharding policy would act on.

None of it moves a digest: heartbeats never emit trace records or
consume RNG draws, so the same seed with telemetry on or off produces
the same run, byte for byte.

This walkthrough:

1. streams a Zipf-skewed workload (shard 1 receives the lion's share)
   across 64 contract shards with paced injection and a bounded
   mempool, heartbeats live on stderr;
2. prints the shard-load report — the hot shard dominates the
   confirmation column and the imbalance indices say so numerically;
3. shows the empty-block rate splitting hot from cold shards, and the
   eviction column pinning backpressure to the overloaded shard.

Run:  python examples/telemetry.py
"""

from repro import ProtocolConfig, ProtocolSimulation
from repro.consensus.miner import MinerIdentity
from repro.consensus.pow import PoWParameters
from repro.net.network import LatencyModel
from repro.observe import Telemetry
from repro.workloads import streaming_powerlaw_contract_workload

FAST_POW = PoWParameters(difficulty=0x40000 // 60)  # ~1 s solo blocks
LOW_LATENCY = LatencyModel(base_seconds=0.01, jitter_seconds=0.01)

MINERS = 96
TXS = 1_600
SHARDS = 64
ALPHA = 1.1  # Zipf exponent: shard 1 gets ~25x shard 64's call volume


def main() -> None:
    miners = [MinerIdentity.create(f"tel-{i}") for i in range(MINERS)]
    stream = streaming_powerlaw_contract_workload(
        total_txs=TXS, contract_shards=SHARDS, alpha=ALPHA, seed=11
    )
    print(f"workload: {stream.description}")
    hot = max(stream.shard_counts.values())
    cold = min(
        count for shard, count in stream.shard_counts.items() if shard != 0
    )
    print(f"declared skew: hottest shard {hot} txs, coldest {cold} txs")

    telemetry = Telemetry(heartbeat_interval=10.0, progress=True)
    config = ProtocolConfig(
        pow_params=FAST_POW,
        latency=LOW_LATENCY,
        seed=11,
        max_duration=3_000.0,
        inject_batch=200,
        inject_interval=5.0,
        mempool_limit=30,
        telemetry=telemetry,
    )
    result = ProtocolSimulation(miners, stream, config=config).run()

    print()
    print(
        f"confirmed {result.confirmed_count()}/{TXS} transactions in "
        f"{result.duration:.0f} simulated seconds "
        f"({result.evicted} evicted by the mempool bound)"
    )
    print(f"heartbeats sampled: {len(telemetry.samples)}")
    print()

    stats = result.shard_stats
    print(stats.render(title="skewed 64-shard run"))
    print()

    imbalance = stats.imbalance()
    print(
        f"hotspot verdict: the busiest shard carries "
        f"{imbalance['max_over_mean']:.1f}x the mean confirmation load "
        f"(gini {imbalance['gini']:.2f}) — the signal a re-sharding "
        f"policy would trigger on."
    )


if __name__ == "__main__":
    main()
