#!/usr/bin/env python3
"""Dynamic epochs: the whole protocol cycling as traffic shifts.

Simulates three epochs of a blockchain whose contract popularity drifts:
a new hot contract emerges while yesterday's favourite fades into a small
shard. Each epoch, :class:`repro.EpochManager` runs the complete cycle —
beacon randomness, shard formation, proportional miner assignment,
inter-shard merging, intra-shard selection, parameter unification — and
the resulting plan is executed in the simulator.

Run:  python examples/dynamic_epochs.py
"""

from repro import EpochManager, ShardedSimulation, SimulationConfig, TimingModel
from repro.consensus.miner import MinerIdentity
from repro.workloads.generators import WorkloadBuilder

TIMING = TimingModel.low_variance(interval=1.0, shape=24.0)

# Contract volumes per epoch: "rising" takes over from "fading".
EPOCH_TRAFFIC = [
    {"fading": 60, "steady": 40, "rising": 6, "niche-a": 4, "niche-b": 5},
    {"fading": 25, "steady": 40, "rising": 35, "niche-a": 5, "niche-b": 4},
    {"fading": 6, "steady": 40, "rising": 62, "niche-a": 3, "niche-b": 4},
]


def build_epoch_workload(epoch_index: int) -> list:
    builder = WorkloadBuilder(seed=100 + epoch_index)
    transactions = []
    for name, volume in sorted(EPOCH_TRAFFIC[epoch_index].items()):
        contract = f"0xc{abs(hash(name)) % 10**36:039d}"
        for user in range(volume):
            sender = f"0xu-{name}-e{epoch_index}-{user}"
            transactions.append(
                builder.contract_call(sender, contract, fee=1 + user % 17)
            )
    return transactions


def main() -> None:
    miners = [MinerIdentity.create(f"dyn-{i}") for i in range(30)]
    manager = EpochManager(miners)

    for epoch_index in range(len(EPOCH_TRAFFIC)):
        transactions = build_epoch_workload(epoch_index)
        plan = manager.run_epoch(epoch_index, transactions)

        sizes = {
            shard: size
            for shard, size in sorted(plan.partition.shard_sizes.items())
            if size
        }
        merged = sorted(
            {
                (old, new)
                for old, new in plan.replay.merged_shard_map.items()
                if old != new
            }
        )
        miner_counts = plan.assignment.shard_sizes()

        print(f"=== epoch {epoch_index} "
              f"(randomness {plan.randomness[:12]}...) ===")
        print(f"  shard sizes: {sizes}")
        print(f"  miners per shard: "
              f"{ {s: c for s, c in sorted(miner_counts.items()) if c} }")
        if merged:
            print(f"  merges: {', '.join(f'{old}->{new}' for old, new in merged)}")
        else:
            print("  merges: none needed")

        result = ShardedSimulation(
            plan.to_specs(),
            SimulationConfig(timing=TIMING, seed=epoch_index),
        ).run()
        deferred = plan.deferred_transactions()
        print(f"  confirmed {result.confirmed_transactions}/"
              f"{result.total_transactions} txs in {result.makespan:.1f}s, "
              f"empty blocks: {result.total_empty_blocks}"
              + (f", deferred to next epoch: {len(deferred)}" if deferred else ""))
        print()


if __name__ == "__main__":
    main()
